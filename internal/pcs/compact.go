package pcs

import (
	"fmt"
	"sort"

	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/merkle"
	"batchzk/internal/transcript"
)

// CompactEvalProof is an evaluation proof whose t column openings share
// one deduplicated Merkle multiproof instead of t independent paths —
// the opened columns dominate this protocol family's multi-MB proofs, so
// the shared-path form shrinks them substantially.
type CompactEvalProof struct {
	TestRow     []field.Element
	CombinedRow []field.Element
	// Columns holds the opened column values keyed by ascending index
	// (duplicated challenge indices are coalesced).
	ColumnIndex  []int
	ColumnValues [][]field.Element
	Paths        *merkle.MultiProof
}

// ProveEvalCompact is ProveEval with shared column paths.
func (s *ProverState) ProveEvalCompact(point []field.Element, tr *transcript.Transcript) (*CompactEvalProof, field.Element, error) {
	n := s.comm.NumVars()
	if len(point) != n {
		return nil, field.Element{}, fmt.Errorf("pcs: point arity %d, want %d", len(point), n)
	}
	tr.AppendDigest("pcs/root", s.comm.Root)
	tr.AppendElements("pcs/point", point)

	gamma := tr.ChallengeElements("pcs/gamma", s.params.NumRows)
	testRow := combineRows(gamma, s.rows, s.params.NumCols)
	tr.AppendElements("pcs/testrow", testRow)

	lo, hi := splitPoint(point, s.params.NumCols)
	eqHi := eqTableOf(hi)
	combined := combineRows(eqHi, s.rows, s.params.NumCols)
	tr.AppendElements("pcs/evalrow", combined)

	idx := tr.ChallengeIndices("pcs/cols", s.params.NumOpenings, s.enc.CodewordLen())
	uniq := map[int]bool{}
	for _, j := range idx {
		uniq[j] = true
	}
	sorted := make([]int, 0, len(uniq))
	for j := range uniq {
		sorted = append(sorted, j)
	}
	sort.Ints(sorted)

	proof := &CompactEvalProof{TestRow: testRow, CombinedRow: combined, ColumnIndex: sorted}
	for _, j := range sorted {
		col := make([]field.Element, s.params.NumRows)
		for r := 0; r < s.params.NumRows; r++ {
			col[r] = s.encoded[r][j]
		}
		proof.ColumnValues = append(proof.ColumnValues, col)
	}
	mp, err := s.tree.ProveMulti(sorted)
	if err != nil {
		return nil, field.Element{}, err
	}
	proof.Paths = mp

	value := field.InnerProduct(combined, eqTableOf(lo))
	return proof, value, nil
}

// VerifyEvalCompact checks a compact evaluation proof.
func VerifyEvalCompact(comm Commitment, point []field.Element, value field.Element, proof *CompactEvalProof, params Params, tr *transcript.Transcript) error {
	if err := params.Validate(); err != nil {
		return err
	}
	if comm.NumRows != params.NumRows || comm.NumCols != params.NumCols {
		return fmt.Errorf("pcs: commitment layout mismatch")
	}
	if len(point) != comm.NumVars() {
		return fmt.Errorf("pcs: point arity %d, want %d", len(point), comm.NumVars())
	}
	if proof == nil || proof.Paths == nil ||
		len(proof.TestRow) != params.NumCols || len(proof.CombinedRow) != params.NumCols ||
		len(proof.ColumnIndex) != len(proof.ColumnValues) {
		return fmt.Errorf("%w: malformed compact proof", ErrReject)
	}
	enc, err := encoder.Cached(params.NumCols, params.Enc)
	if err != nil {
		return err
	}

	tr.AppendDigest("pcs/root", comm.Root)
	tr.AppendElements("pcs/point", point)
	gamma := tr.ChallengeElements("pcs/gamma", params.NumRows)
	tr.AppendElements("pcs/testrow", proof.TestRow)
	tr.AppendElements("pcs/evalrow", proof.CombinedRow)
	idx := tr.ChallengeIndices("pcs/cols", params.NumOpenings, enc.CodewordLen())

	// The proof's sorted unique indices must be exactly the challenge set.
	want := map[int]bool{}
	for _, j := range idx {
		want[j] = true
	}
	if len(want) != len(proof.ColumnIndex) {
		return fmt.Errorf("%w: %d opened columns, challenge set has %d", ErrReject, len(proof.ColumnIndex), len(want))
	}
	for k, j := range proof.ColumnIndex {
		if !want[j] {
			return fmt.Errorf("%w: column %d not in the challenge set", ErrReject, j)
		}
		if k > 0 && j <= proof.ColumnIndex[k-1] {
			return fmt.Errorf("%w: column indices not strictly increasing", ErrReject)
		}
	}

	// Shared Merkle paths: leaves must equal the column hashes.
	if len(proof.Paths.Indices) != len(proof.ColumnIndex) {
		return fmt.Errorf("%w: path/column count mismatch", ErrReject)
	}
	for k, j := range proof.ColumnIndex {
		if proof.Paths.Indices[k] != j {
			return fmt.Errorf("%w: path index mismatch at %d", ErrReject, k)
		}
		if len(proof.ColumnValues[k]) != params.NumRows {
			return fmt.Errorf("%w: column %d has %d values", ErrReject, j, len(proof.ColumnValues[k]))
		}
		if merkle.HashElements(proof.ColumnValues[k]) != proof.Paths.Leaves[k] {
			return fmt.Errorf("%w: column %d leaf mismatch", ErrReject, j)
		}
	}
	if !merkle.VerifyMulti(comm.Root, proof.Paths) {
		return fmt.Errorf("%w: shared Merkle paths invalid", ErrReject)
	}

	encTest, err := enc.Encode(proof.TestRow)
	if err != nil {
		return err
	}
	encEval, err := enc.Encode(proof.CombinedRow)
	if err != nil {
		return err
	}
	lo, hi := splitPoint(point, params.NumCols)
	eqHi := eqTableOf(hi)
	for k, j := range proof.ColumnIndex {
		got := field.InnerProduct(gamma, proof.ColumnValues[k])
		if !got.Equal(&encTest[j]) {
			return fmt.Errorf("%w: column %d fails proximity check", ErrReject, j)
		}
		got = field.InnerProduct(eqHi, proof.ColumnValues[k])
		if !got.Equal(&encEval[j]) {
			return fmt.Errorf("%w: column %d fails evaluation check", ErrReject, j)
		}
	}
	wantVal := field.InnerProduct(proof.CombinedRow, eqTableOf(lo))
	if !wantVal.Equal(&value) {
		return fmt.Errorf("%w: combined row does not yield the claimed value", ErrReject)
	}
	return nil
}

// PathDigests reports how many sibling digests the compact proof carries
// versus the per-column form — the size saving of the shared paths.
func (p *CompactEvalProof) PathDigests() (compact, independent int) {
	if p == nil || p.Paths == nil {
		return 0, 0
	}
	depth := 0
	for 1<<depth < p.Paths.NumLeaves {
		depth++
	}
	return p.Paths.MultiProofSize(), len(p.ColumnIndex) * depth
}
