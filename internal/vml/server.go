package vml

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"batchzk/internal/nn"
	"batchzk/internal/obs"
	"batchzk/internal/protocol"
	"batchzk/internal/telemetry"
)

// HTTP interface (the first component of the paper's Figure 8): "an
// interface for the service provider to interact with customers. All
// public data to both parties, including customer input, prediction
// results, and zero-knowledge proofs, are transmitted through this
// interface." The model never crosses it.
//
//	GET  /commitment → {"modelRoot": hex}
//	POST /predict    → {"class", "logits", "proof": base64}

// PredictRequest is the customer's query: a flattened fixed-point image.
type PredictRequest struct {
	C      int     `json:"c"`
	H      int     `json:"h"`
	W      int     `json:"w"`
	Pixels []int64 `json:"pixels"`
}

// PredictResponse carries the prediction and its proof.
type PredictResponse struct {
	Class  int     `json:"class"`
	Logits []int64 `json:"logits"`
	Proof  string  `json:"proof"` // base64 of the serialized proof
}

// CommitmentResponse publishes the model commitment.
type CommitmentResponse struct {
	ModelRoot string `json:"modelRoot"` // hex
}

// Request-size limits on /predict: bodies above maxPredictBody and
// images declaring more than maxPredictPixels pixels both answer
// 413 Payload Too Large.
const (
	maxPredictBody   = 1 << 20
	maxPredictPixels = 1 << 16
)

// Handler returns an http.Handler serving the MLaaS interface for this
// service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/commitment", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		root := s.ModelRoot()
		writeJSON(w, CommitmentResponse{ModelRoot: fmt.Sprintf("%x", root[:])})
	})
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		// MaxBytesReader (unlike a bare LimitReader, which silently
		// truncates and surfaces as a confusing decode failure) makes an
		// oversized body a distinct error class, so it maps to 413
		// Payload Too Large instead of a 4xx/5xx about malformed JSON.
		r.Body = http.MaxBytesReader(w, r.Body, maxPredictBody)
		var req PredictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
					http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		if req.C > 0 && req.H > 0 && req.W > 0 && req.C*req.H*req.W > maxPredictPixels {
			http.Error(w, fmt.Sprintf("image of %d pixels exceeds the %d-pixel limit",
				req.C*req.H*req.W, maxPredictPixels), http.StatusRequestEntityTooLarge)
			return
		}
		if req.C*req.H*req.W != len(req.Pixels) || len(req.Pixels) == 0 {
			http.Error(w, "bad request: pixel count does not match dimensions", http.StatusBadRequest)
			return
		}
		img := nn.NewTensor(req.C, req.H, req.W)
		copy(img.Data, req.Pixels)
		// Propagate job identity across the HTTP boundary: an X-Trace-Id
		// header (or an id already on the request context) keeps the
		// caller's trace id on the prover's flight timeline, and the
		// response echoes whichever id the job actually ran under.
		ctx := r.Context()
		if h := r.Header.Get("X-Trace-Id"); h != "" {
			if id, perr := strconv.ParseUint(h, 10, 64); perr == nil && id != 0 {
				ctx = telemetry.WithTraceID(ctx, telemetry.TraceID(id))
			}
		}
		if id := telemetry.TraceIDFrom(ctx); id != 0 {
			w.Header().Set("X-Trace-Id", strconv.FormatUint(uint64(id), 10))
		}
		trace := telemetry.TraceIDFrom(ctx)
		preds, err := s.HandleBatchContext(ctx, []*nn.Tensor{img})
		if err != nil {
			obs.Warn("vml", "predict.rejected", obs.Trace(trace), obs.Err(err))
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		p := preds[0]
		if p.Err != nil {
			obs.Error("vml", "predict.failed", obs.Trace(trace), obs.Err(p.Err))
			http.Error(w, "proving failed: "+p.Err.Error(), http.StatusInternalServerError)
			return
		}
		blob, err := p.Proof.MarshalBinary()
		if err != nil {
			obs.Error("vml", "predict.serialize_failed", obs.Trace(trace), obs.Err(err))
			http.Error(w, "serialization failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, PredictResponse{
			Class:  p.Class,
			Logits: p.Logits,
			Proof:  base64.StdEncoding.EncodeToString(blob),
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// RemoteClient is the customer side of the HTTP interface: it fetches the
// commitment once and verifies every prediction locally against it.
type RemoteClient struct {
	base     string
	http     *http.Client
	verifier *Client
}

// NewRemoteClient builds a client for a service at baseURL. The local
// verification material (circuit, params, expected commitment) comes from
// the service's published description — here passed directly, as both
// sides compile the same public circuit.
func NewRemoteClient(baseURL string, verifier *Client, hc *http.Client) (*RemoteClient, error) {
	if verifier == nil {
		return nil, fmt.Errorf("vml: nil verifier")
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	rc := &RemoteClient{base: baseURL, http: hc, verifier: verifier}
	// Cross-check the served commitment against the trusted one.
	resp, err := hc.Get(baseURL + "/commitment")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var cr CommitmentResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return nil, err
	}
	root := verifier.ModelRoot()
	if cr.ModelRoot != fmt.Sprintf("%x", root[:]) {
		return nil, fmt.Errorf("vml: server commitment %s does not match the trusted root", cr.ModelRoot)
	}
	return rc, nil
}

// Predict sends an image, verifies the returned proof against the
// commitment, and returns the verified prediction.
func (rc *RemoteClient) Predict(img *nn.Tensor) (*Prediction, error) {
	body, err := json.Marshal(PredictRequest{C: img.C, H: img.H, W: img.W, Pixels: img.Data})
	if err != nil {
		return nil, err
	}
	resp, err := rc.http.Post(rc.base+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("vml: server returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, err
	}
	blob, err := base64.StdEncoding.DecodeString(pr.Proof)
	if err != nil {
		return nil, err
	}
	proof := &protocol.Proof{}
	if err := proof.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	pred := &Prediction{Class: pr.Class, Logits: pr.Logits, Proof: proof}
	if err := rc.verifier.VerifyPrediction(img, pred); err != nil {
		return nil, err
	}
	return pred, nil
}
