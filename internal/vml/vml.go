// Package vml implements the verifiable machine-learning application of
// the paper's §5: a Machine-Learning-as-a-Service deployment where the
// service provider commits to a model once, answers prediction queries
// with the ML engine (internal/nn), and uses the fully pipelined batch
// prover (internal/core) to attach a proof to every prediction, which the
// customer verifies against the model commitment.
//
// The flow matches Figure 8:
//
//	preprocessing:  Merkle-commit the model parameters → root; compile the
//	                inference function to a circuit (bound to the
//	                commitment via a Fiat–Shamir Horner hash);
//	prediction:     the engine computes the logits/class for each input;
//	proving:        the batch prover streams the queries through the
//	                pipeline, one proof per prediction;
//	verification:   the customer checks the proof, the binding hash, and
//	                reads the prediction from the pinned outputs.
package vml

import (
	"context"
	"fmt"
	"math/bits"

	"batchzk/internal/circuit"
	"batchzk/internal/core"
	"batchzk/internal/field"
	"batchzk/internal/gpusim"
	"batchzk/internal/merkle"
	"batchzk/internal/nn"
	"batchzk/internal/perfmodel"
	"batchzk/internal/protocol"
	"batchzk/internal/sha2"
	"batchzk/internal/telemetry"
	"batchzk/internal/transcript"
)

// Service is the provider side: the model, its commitment, and the prover.
type Service struct {
	net      *nn.Network
	compiled *nn.Compiled
	params   *protocol.Params
	prover   *core.BatchProver

	modelTree *merkle.Tree
	rho       field.Element
	modelHash field.Element
}

// NewService commits to the network's parameters, compiles the bound
// inference circuit, and prepares the batch prover with the given
// pipeline depth.
func NewService(net *nn.Network, depth int) (*Service, error) {
	tree, err := CommitModel(net)
	if err != nil {
		return nil, err
	}
	rho := BindingChallenge(tree.Root())
	compiled, err := nn.CompileBound(net, rho)
	if err != nil {
		return nil, err
	}
	p, err := protocol.Setup(compiled.Circuit)
	if err != nil {
		return nil, err
	}
	prover, err := core.NewBatchProver(compiled.Circuit, p, depth)
	if err != nil {
		return nil, err
	}
	return &Service{
		net: net, compiled: compiled, params: p, prover: prover,
		modelTree: tree, rho: rho,
		modelHash: nn.ParamsHash(net.Parameters(), rho),
	}, nil
}

// CommitModel builds the Merkle commitment over the model parameters
// (each 512-bit block packs eight 64-bit fixed-point values).
func CommitModel(net *nn.Network) (*merkle.Tree, error) {
	params := net.Parameters()
	if len(params) == 0 {
		return nil, fmt.Errorf("vml: model has no parameters")
	}
	var blocks []merkle.Block
	var cur merkle.Block
	n := 0
	for _, p := range params {
		for i := 0; i < 8; i++ {
			cur[n*8+i] = byte(uint64(p) >> (8 * i))
		}
		n++
		if n == 8 {
			blocks = append(blocks, cur)
			cur, n = merkle.Block{}, 0
		}
	}
	if n > 0 {
		blocks = append(blocks, cur)
	}
	blocks = merkle.PadBlocks(blocks)
	return merkle.Build(blocks)
}

// BindingChallenge derives the Horner-hash base ρ from the model's Merkle
// root by Fiat–Shamir.
func BindingChallenge(root sha2.Digest) field.Element {
	tr := transcript.New("vml/binding")
	tr.AppendDigest("model-root", root)
	return tr.ChallengeElement("rho")
}

// ModelRoot returns the public model commitment.
func (s *Service) ModelRoot() sha2.Digest { return s.modelTree.Root() }

// OpenModelBlocks returns a batched Merkle opening of the requested
// parameter blocks — the data-availability spot check a customer can run
// against the commitment without learning the rest of the model.
func (s *Service) OpenModelBlocks(indices []int) (*merkle.MultiProof, error) {
	return s.modelTree.ProveMulti(indices)
}

// VerifyModelBlocks checks a spot-check opening against the commitment
// the client holds.
func (c *Client) VerifyModelBlocks(mp *merkle.MultiProof) error {
	if !merkle.VerifyMulti(c.modelRoot, mp) {
		return fmt.Errorf("vml: model-block opening does not match the commitment")
	}
	return nil
}

// Client returns the public verification material a customer needs.
func (s *Service) Client() *Client {
	return &Client{
		circuit:   s.compiled.Circuit,
		params:    s.params,
		modelRoot: s.modelTree.Root(),
		modelHash: s.modelHash,
		// All outputs but the trailing binding hash are logits.
		numLogits: len(s.compiled.Circuit.Outputs) - 1,
	}
}

// Prediction is one answered query: the class, the raw logits, and the
// proof binding them to the committed model.
type Prediction struct {
	Class  int
	Logits []int64
	Proof  *protocol.Proof
	Err    error
}

// HandleBatch answers a batch of queries: predictions immediately, proofs
// via the pipelined batch prover.
func (s *Service) HandleBatch(images []*nn.Tensor) ([]Prediction, error) {
	return s.HandleBatchContext(context.Background(), images)
}

// HandleBatchContext is HandleBatch with request-scoped job identity: a
// flight-recorder trace id carried by ctx (telemetry.WithTraceID) is
// stamped on a single-query batch, so the service request and the
// prover's per-job timeline share one id across the API boundary. A
// multi-image batch always mints fresh per-job ids — one context id
// cannot name several jobs.
func (s *Service) HandleBatchContext(ctx context.Context, images []*nn.Tensor) ([]Prediction, error) {
	jobs := make([]core.Job, len(images))
	preds := make([]Prediction, len(images))
	for i, img := range images {
		public, secret, err := s.compiled.BuildInputs(img)
		if err != nil {
			return nil, fmt.Errorf("vml: image %d: %w", i, err)
		}
		jobs[i] = core.Job{ID: i, Public: public, Secret: secret}
	}
	if len(jobs) == 1 {
		jobs[0].Trace = telemetry.TraceIDFrom(ctx)
	}
	results := s.prover.ProveBatch(jobs)
	for i, r := range results {
		preds[i].Err = r.Err
		if r.Err != nil {
			continue
		}
		preds[i].Proof = r.Proof
		logits, class, err := logitsFromOutputs(r.Proof.Outputs, s.compiled.Bound)
		if err != nil {
			preds[i].Err = err
			continue
		}
		preds[i].Logits = logits
		preds[i].Class = class
	}
	return preds, nil
}

// logitsFromOutputs strips the binding-hash output and decodes the logits.
func logitsFromOutputs(outputs []field.Element, bound bool) ([]int64, int, error) {
	n := len(outputs)
	if bound {
		n--
	}
	if n <= 0 {
		return nil, 0, fmt.Errorf("vml: proof carries no logits")
	}
	logits := make([]int64, n)
	best := 0
	for i := 0; i < n; i++ {
		v, err := decodeSigned(&outputs[i])
		if err != nil {
			return nil, 0, err
		}
		logits[i] = v
		if v > logits[best] {
			best = i
		}
	}
	return logits, best, nil
}

// decodeSigned maps a field element back to a small signed integer.
func decodeSigned(e *field.Element) (int64, error) {
	if v, ok := e.Uint64(); ok && bits.Len64(v) < 63 {
		return int64(v), nil
	}
	var neg field.Element
	neg.Neg(e)
	if v, ok := neg.Uint64(); ok && bits.Len64(v) < 63 {
		return -int64(v), nil
	}
	return 0, fmt.Errorf("vml: output is not a small integer")
}

// Client is the customer side: public verification material only — it
// never sees the model parameters.
type Client struct {
	circuit   *circuit.Circuit
	params    *protocol.Params
	modelRoot sha2.Digest
	modelHash field.Element
	numLogits int
}

// ModelRoot returns the commitment the client trusts.
func (c *Client) ModelRoot() sha2.Digest { return c.modelRoot }

// VerifyPrediction checks that a prediction was computed by the committed
// model on the client's image: the ZK proof must verify, the binding-hash
// output must match the committed model hash, and the claimed logits must
// equal the proof's pinned outputs.
func (c *Client) VerifyPrediction(img *nn.Tensor, pred *Prediction) error {
	if pred == nil || pred.Proof == nil {
		return fmt.Errorf("vml: missing proof")
	}
	public := make([]field.Element, img.Len())
	for i, v := range img.Data {
		public[i].SetInt64(v)
	}
	if err := protocol.Verify(c.circuit, c.params, public, pred.Proof); err != nil {
		return fmt.Errorf("vml: %w", err)
	}
	outs := pred.Proof.Outputs
	if len(outs) != c.numLogits+1 {
		return fmt.Errorf("vml: proof carries %d outputs, want %d", len(outs), c.numLogits+1)
	}
	// Model binding.
	hash := outs[len(outs)-1]
	if !hash.Equal(&c.modelHash) {
		return fmt.Errorf("vml: proof was generated with a different model")
	}
	// Claimed logits and class must match the pinned outputs.
	logits, class, err := logitsFromOutputs(outs, true)
	if err != nil {
		return err
	}
	if class != pred.Class {
		return fmt.Errorf("vml: claimed class %d, proof says %d", pred.Class, class)
	}
	for i := range logits {
		if i < len(pred.Logits) && logits[i] != pred.Logits[i] {
			return fmt.Errorf("vml: logit %d mismatch", i)
		}
	}
	return nil
}

// EffectiveScale estimates the proving circuit scale of a network under a
// sum-check-based CNN proof system: zkCNN-style protocols prove
// convolutions at a cost proportional to parameters + activations (not
// MACs), so the scale is the next power of two covering both.
func EffectiveScale(net *nn.Network) int {
	activations := 0
	c, h, w := net.InC, net.InH, net.InW
	for _, l := range net.Layers {
		c, h, w = l.OutShape(c, h, w)
		activations += c * h * w
	}
	n := net.NumParameters() + activations
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// PerformanceReport is the Table 11 row for our system.
type PerformanceReport struct {
	Scale            int
	ThroughputPerSec float64
	LatencySec       float64
}

// SimulatePerformance models the verifiable-ML proof generation of a
// network on a device — the "Ours" column of Table 11.
func SimulatePerformance(spec gpusim.DeviceSpec, net *nn.Network, batch int) (*PerformanceReport, error) {
	scale := EffectiveScale(net)
	rep, err := core.SimulateSystem(spec, perfmodel.GPUCosts(), scale, batch, true)
	if err != nil {
		return nil, err
	}
	return &PerformanceReport{
		Scale:            scale,
		ThroughputPerSec: rep.ThroughputPerMs() * 1000,
		LatencySec:       rep.LatencyNs / 1e9,
	}, nil
}
