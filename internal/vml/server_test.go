package vml

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"batchzk/internal/nn"
	"batchzk/internal/telemetry"
)

func TestHTTPInterfaceEndToEnd(t *testing.T) {
	svc := newTinyService(t)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	rc, err := NewRemoteClient(srv.URL, svc.Client(), srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	img := nn.RandImage(1, 8, 8, 55)
	pred, err := rc.Predict(img)
	if err != nil {
		t.Fatal(err)
	}
	// The verified class matches local inference.
	want, _ := svc.net.Classify(img)
	if pred.Class != want {
		t.Fatalf("remote class %d, local %d", pred.Class, want)
	}
}

func TestHTTPRejectsWrongCommitment(t *testing.T) {
	// A client trusting model A must refuse to talk to a server running
	// model B.
	svcA := newTinyService(t)
	svcB, err := NewService(nn.TinyCNN(4321), 2)
	if err != nil {
		t.Fatal(err)
	}
	srvB := httptest.NewServer(svcB.Handler())
	defer srvB.Close()
	if _, err := NewRemoteClient(srvB.URL, svcA.Client(), srvB.Client()); err == nil {
		t.Fatal("client accepted a server with a different commitment")
	}
}

func TestHTTPBadRequests(t *testing.T) {
	svc := newTinyService(t)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()

	// Wrong method.
	resp, err := client.Get(srv.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict = %d", resp.StatusCode)
	}
	resp, err = client.Post(srv.URL+"/commitment", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /commitment = %d", resp.StatusCode)
	}

	// Malformed JSON.
	resp, err = client.Post(srv.URL+"/predict", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON = %d", resp.StatusCode)
	}

	// Dimension mismatch.
	body, _ := json.Marshal(PredictRequest{C: 1, H: 8, W: 8, Pixels: []int64{1, 2, 3}})
	resp, err = client.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dimension mismatch = %d", resp.StatusCode)
	}

	// Wrong image shape for the model.
	body, _ = json.Marshal(PredictRequest{C: 3, H: 8, W: 8, Pixels: make([]int64, 192)})
	resp, err = client.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong shape = %d", resp.StatusCode)
	}
}

func TestHTTPTamperedProofDetected(t *testing.T) {
	// A man-in-the-middle flipping the class in transit must be caught by
	// the client's local verification.
	svc := newTinyService(t)
	tamper := http.NewServeMux()
	inner := svc.Handler()
	tamper.HandleFunc("/commitment", inner.ServeHTTP)
	tamper.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		var pr PredictResponse
		if err := json.NewDecoder(rec.Body).Decode(&pr); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		pr.Class = (pr.Class + 1) % 10 // flip the claimed class
		writeJSON(w, pr)
	})
	srv := httptest.NewServer(tamper)
	defer srv.Close()

	rc, err := NewRemoteClient(srv.URL, svc.Client(), srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Predict(nn.RandImage(1, 8, 8, 66)); err == nil {
		t.Fatal("tampered response accepted")
	}
}

// TestHTTPTraceIDRoundTrip: an X-Trace-Id request header rides the
// request context into the batch prover's flight recorder, and the
// response echoes the id the job ran under, so a customer can correlate
// their request with the provider's per-job timeline.
func TestHTTPTraceIDRoundTrip(t *testing.T) {
	sink := telemetry.NewSink(0)
	telemetry.Enable(sink)
	defer telemetry.Enable(nil)

	svc := newTinyService(t)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	img := nn.RandImage(1, 8, 8, 3)
	body, err := json.Marshal(PredictRequest{C: img.C, H: img.H, W: img.W, Pixels: img.Data})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", "777")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict returned %s", resp.Status)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "777" {
		t.Fatalf("response echoed X-Trace-Id %q, want 777", got)
	}
	tl, ok := sink.FlightRecorder().Timeline(telemetry.TraceID(777))
	if !ok {
		t.Fatal("caller's trace id did not reach the flight recorder")
	}
	if !tl.Done || tl.Error != "" {
		t.Fatalf("timeline for the proved request: %+v", tl)
	}
	if len(tl.Stages) == 0 {
		t.Fatal("timeline recorded no pipeline stages")
	}
}

// Regression: oversized /predict payloads must answer 413 Payload Too
// Large — both a body over the byte cap and a declared image over the
// pixel cap — never a truncation-induced decode error or a 500.
func TestHTTPOversizedPayload413(t *testing.T) {
	svc := newTinyService(t)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()

	// Body over maxPredictBody: a pixel array big enough that its JSON
	// encoding clears 1 MiB.
	body, _ := json.Marshal(PredictRequest{C: 1, H: 1024, W: 1024, Pixels: make([]int64, 1024*1024)})
	if len(body) <= maxPredictBody {
		t.Fatalf("test body is %d bytes, expected > %d", len(body), maxPredictBody)
	}
	resp, err := client.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}

	// Declared dimensions over maxPredictPixels with a small body:
	// rejected by the pixel cap before any allocation.
	body, _ = json.Marshal(PredictRequest{C: 64, H: 64, W: 64, Pixels: []int64{1}})
	resp, err = client.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized declared image = %d, want 413", resp.StatusCode)
	}

	// An in-bounds request still proves after the caps are in place.
	img := nn.RandImage(1, 8, 8, 77)
	body, _ = json.Marshal(PredictRequest{C: img.C, H: img.H, W: img.W, Pixels: img.Data})
	resp, err = client.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-bounds request = %d, want 200", resp.StatusCode)
	}
}
