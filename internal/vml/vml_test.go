package vml

import (
	"testing"

	"batchzk/internal/field"
	"batchzk/internal/nn"
	"batchzk/internal/perfmodel"
)

func newTinyService(t testing.TB) *Service {
	t.Helper()
	svc, err := NewService(nn.TinyCNN(99), 2)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestEndToEndMLaaS(t *testing.T) {
	svc := newTinyService(t)
	client := svc.Client()
	if client.ModelRoot() != svc.ModelRoot() {
		t.Fatal("client holds a different commitment")
	}

	images := []*nn.Tensor{
		nn.RandImage(1, 8, 8, 1),
		nn.RandImage(1, 8, 8, 2),
		nn.RandImage(1, 8, 8, 3),
	}
	preds, err := svc.HandleBatch(images)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range preds {
		if p.Err != nil {
			t.Fatalf("prediction %d: %v", i, p.Err)
		}
		// Class must match direct engine inference.
		want, err := svc.net.Classify(images[i])
		if err != nil {
			t.Fatal(err)
		}
		if p.Class != want {
			t.Fatalf("prediction %d: class %d, engine says %d", i, p.Class, want)
		}
		if err := client.VerifyPrediction(images[i], &p); err != nil {
			t.Fatalf("prediction %d: %v", i, err)
		}
	}
}

func TestClientRejectsModelSubstitution(t *testing.T) {
	// Two services with different models: proofs from one must not verify
	// against the other's commitment.
	svcA := newTinyService(t)
	svcB, err := NewService(nn.TinyCNN(1234), 2) // different weights
	if err != nil {
		t.Fatal(err)
	}
	clientA := svcA.Client()
	img := nn.RandImage(1, 8, 8, 7)
	predsB, err := svcB.HandleBatch([]*nn.Tensor{img})
	if err != nil {
		t.Fatal(err)
	}
	if predsB[0].Err != nil {
		t.Fatal(predsB[0].Err)
	}
	if err := clientA.VerifyPrediction(img, &predsB[0]); err == nil {
		t.Fatal("client accepted a proof from a substituted model")
	}
}

func TestClientRejectsTamperedPrediction(t *testing.T) {
	svc := newTinyService(t)
	client := svc.Client()
	img := nn.RandImage(1, 8, 8, 9)
	preds, _ := svc.HandleBatch([]*nn.Tensor{img})
	p := preds[0]
	if p.Err != nil {
		t.Fatal(p.Err)
	}

	tampered := p
	tampered.Class = (p.Class + 1) % 10
	if err := client.VerifyPrediction(img, &tampered); err == nil {
		t.Fatal("client accepted a tampered class")
	}

	tampered = p
	tampered.Logits = append([]int64{}, p.Logits...)
	tampered.Logits[0] += 5
	if err := client.VerifyPrediction(img, &tampered); err == nil {
		t.Fatal("client accepted tampered logits")
	}

	// Wrong image: the proof pins the public inputs.
	other := nn.RandImage(1, 8, 8, 10)
	if err := client.VerifyPrediction(other, &p); err == nil {
		t.Fatal("client accepted a proof for a different image")
	}

	if err := client.VerifyPrediction(img, nil); err == nil {
		t.Fatal("client accepted a nil prediction")
	}
	noProof := p
	noProof.Proof = nil
	if err := client.VerifyPrediction(img, &noProof); err == nil {
		t.Fatal("client accepted a missing proof")
	}
}

func TestMLPService(t *testing.T) {
	// The flow works for fully connected models too (4 output classes).
	svc, err := NewService(nn.TinyMLP(31), 2)
	if err != nil {
		t.Fatal(err)
	}
	client := svc.Client()
	img := nn.RandImage(1, 4, 4, 32)
	preds, err := svc.HandleBatch([]*nn.Tensor{img})
	if err != nil {
		t.Fatal(err)
	}
	if preds[0].Err != nil {
		t.Fatal(preds[0].Err)
	}
	if len(preds[0].Logits) != 4 {
		t.Fatalf("MLP produced %d logits", len(preds[0].Logits))
	}
	if err := client.VerifyPrediction(img, &preds[0]); err != nil {
		t.Fatal(err)
	}
}

func TestModelBlockAudit(t *testing.T) {
	svc := newTinyService(t)
	client := svc.Client()
	mp, err := svc.OpenModelBlocks([]int{0, 3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.VerifyModelBlocks(mp); err != nil {
		t.Fatal(err)
	}
	// Openings from a different model must not verify.
	other, _ := NewService(nn.TinyCNN(777), 2)
	mpOther, _ := other.OpenModelBlocks([]int{0, 3, 7})
	if err := client.VerifyModelBlocks(mpOther); err == nil {
		t.Fatal("accepted an opening from a different model")
	}
	if _, err := svc.OpenModelBlocks([]int{1 << 30}); err == nil {
		t.Fatal("out-of-range block accepted")
	}
}

func TestCommitModelDeterminism(t *testing.T) {
	net := nn.TinyCNN(5)
	t1, err := CommitModel(net)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := CommitModel(nn.TinyCNN(5))
	if t1.Root() != t2.Root() {
		t.Fatal("same model produced different roots")
	}
	t3, _ := CommitModel(nn.TinyCNN(6))
	if t1.Root() == t3.Root() {
		t.Fatal("different models produced the same root")
	}
	// ρ depends on the root.
	r1 := BindingChallenge(t1.Root())
	r3 := BindingChallenge(t3.Root())
	if r1.Equal(&r3) {
		t.Fatal("binding challenge ignores the root")
	}
}

func TestEffectiveScale(t *testing.T) {
	vgg := nn.VGG16(1)
	scale := EffectiveScale(vgg)
	// Parameters (≈14.7M) + activations (≈0.3M) round to 2^24.
	if scale != 1<<24 {
		t.Fatalf("VGG-16 effective scale = 2^%d, want 2^24", log2(scale))
	}
	tiny := nn.TinyCNN(1)
	if EffectiveScale(tiny) >= scale {
		t.Fatal("tiny network should have a smaller scale")
	}
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

func TestSimulatePerformanceVGG(t *testing.T) {
	rep, err := SimulatePerformance(perfmodel.GH200(), nn.VGG16(1), 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Table 11's headline: sub-second amortized proof generation, i.e.
	// throughput well above 1 proof/s, and the latency/throughput
	// trade-off of the pipeline (latency in seconds, not milliseconds).
	if rep.ThroughputPerSec < 1 {
		t.Fatalf("throughput %.2f proofs/s — not sub-second generation", rep.ThroughputPerSec)
	}
	if rep.LatencySec < 0.1 {
		t.Fatalf("latency %.3f s suspiciously low for a deep pipeline", rep.LatencySec)
	}
	// The CPU baselines of Table 11 are 48–637 s per proof; ours must be
	// orders of magnitude above their throughput.
	if rep.ThroughputPerSec < 100*0.0208 {
		t.Fatalf("throughput %.2f proofs/s does not clear ZENO (0.0208/s) by 100×", rep.ThroughputPerSec)
	}
}

func TestDecodeSigned(t *testing.T) {
	var e field.Element
	e.SetInt64(-42)
	v, err := decodeSigned(&e)
	if err != nil || v != -42 {
		t.Fatalf("decode(-42) = %d, %v", v, err)
	}
	e.SetInt64(1 << 40)
	v, err = decodeSigned(&e)
	if err != nil || v != 1<<40 {
		t.Fatalf("decode(2^40) = %d, %v", v, err)
	}
	e.Rand() // overwhelming likely not small
	if _, err := decodeSigned(&e); err == nil {
		t.Skip("random element happened to be small (p < 2^-190)")
	}
}
