package merkle

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMultiProofRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr, _ := Build(randBlocks(r, 32))
	root := tr.Root()
	cases := [][]int{
		{0},
		{31},
		{0, 1}, // sibling pair: zero extra siblings at layer 0
		{3, 5, 8, 21},
		{0, 1, 2, 3, 4, 5, 6, 7}, // full subtree
		{7, 7, 7, 3},             // duplicates coalesce
	}
	for _, idxs := range cases {
		mp, err := tr.ProveMulti(idxs)
		if err != nil {
			t.Fatalf("%v: %v", idxs, err)
		}
		if !VerifyMulti(root, mp) {
			t.Fatalf("%v: multiproof rejected", idxs)
		}
	}
}

func TestMultiProofDeduplication(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	tr, _ := Build(randBlocks(r, 64))
	// A full subtree of 8 leaves needs siblings only above the subtree:
	// depth 6, subtree covers 3 levels → 3 siblings.
	mp, _ := tr.ProveMulti([]int{8, 9, 10, 11, 12, 13, 14, 15})
	if mp.MultiProofSize() != 3 {
		t.Fatalf("full-subtree multiproof has %d siblings, want 3", mp.MultiProofSize())
	}
	// Versus independent paths: 8 × 6 = 48 digests.
	single := 8 * tr.Depth()
	if mp.MultiProofSize() >= single {
		t.Fatal("multiproof did not save anything")
	}
	// A sibling pair at layer 0 saves exactly one digest vs two paths.
	pair, _ := tr.ProveMulti([]int{20, 21})
	if pair.MultiProofSize() != tr.Depth()-1 {
		t.Fatalf("pair multiproof has %d siblings, want %d", pair.MultiProofSize(), tr.Depth()-1)
	}
}

func TestMultiProofRejections(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr, _ := Build(randBlocks(r, 16))
	root := tr.Root()
	if _, err := tr.ProveMulti(nil); err == nil {
		t.Fatal("empty index set accepted")
	}
	if _, err := tr.ProveMulti([]int{16}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := tr.ProveMulti([]int{-1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if VerifyMulti(root, nil) {
		t.Fatal("nil multiproof accepted")
	}

	mp, _ := tr.ProveMulti([]int{2, 9, 13})

	// Tampered leaf.
	tampered := *mp
	tampered.Leaves = append(tampered.Leaves[:0:0], mp.Leaves...)
	tampered.Leaves[1][0] ^= 1
	if VerifyMulti(root, &tampered) {
		t.Fatal("tampered leaf accepted")
	}
	// Tampered sibling.
	tampered = *mp
	tampered.Siblings = append(tampered.Siblings[:0:0], mp.Siblings...)
	tampered.Siblings[0][5] ^= 1
	if VerifyMulti(root, &tampered) {
		t.Fatal("tampered sibling accepted")
	}
	// Extra sibling (must be fully consumed).
	tampered = *mp
	tampered.Siblings = append(append(tampered.Siblings[:0:0], mp.Siblings...), mp.Siblings[0])
	if VerifyMulti(root, &tampered) {
		t.Fatal("trailing sibling accepted")
	}
	// Missing sibling.
	tampered = *mp
	tampered.Siblings = mp.Siblings[:len(mp.Siblings)-1]
	if VerifyMulti(root, &tampered) {
		t.Fatal("truncated siblings accepted")
	}
	// Wrong index ordering.
	tampered = *mp
	tampered.Indices = []int{9, 2, 13}
	if VerifyMulti(root, &tampered) {
		t.Fatal("unsorted indices accepted")
	}
	// Wrong tree width.
	tampered = *mp
	tampered.NumLeaves = 12
	if VerifyMulti(root, &tampered) {
		t.Fatal("non-power-of-two width accepted")
	}
	// Wrong root.
	badRoot := root
	badRoot[0] ^= 1
	if VerifyMulti(badRoot, mp) {
		t.Fatal("wrong root accepted")
	}
}

func TestMultiProofMatchesSinglePaths(t *testing.T) {
	// Property: for random index sets, the multiproof verifies iff every
	// single path verifies, and it is never larger than the sum of paths.
	rsrc := rand.New(rand.NewSource(4))
	f := func(seed int64, picks [5]uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr, _ := Build(randBlocks(r, 32))
		idxs := make([]int, 0, 5)
		for _, p := range picks {
			idxs = append(idxs, int(p)%32)
		}
		mp, err := tr.ProveMulti(idxs)
		if err != nil {
			return false
		}
		if !VerifyMulti(tr.Root(), mp) {
			return false
		}
		return mp.MultiProofSize() <= len(mp.Indices)*tr.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rsrc}); err != nil {
		t.Fatal(err)
	}
}
