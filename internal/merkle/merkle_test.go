package merkle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"batchzk/internal/field"
	"batchzk/internal/sha2"
)

func randBlocks(r *rand.Rand, n int) []Block {
	bs := make([]Block, n)
	for i := range bs {
		r.Read(bs[i][:])
	}
	return bs
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil); err != ErrEmpty {
		t.Fatalf("empty: %v", err)
	}
	if _, err := Build(make([]Block, 3)); err == nil {
		t.Fatal("accepted non-power-of-two")
	}
	if _, err := BuildFromDigests(nil); err != ErrEmpty {
		t.Fatal("empty digests accepted")
	}
	if _, err := BuildFromDigests(make([]sha2.Digest, 5)); err == nil {
		t.Fatal("accepted non-power-of-two digests")
	}
}

// TestLevelShapeCache: the cached arena layout must reproduce the naive
// level-by-level construction exactly — layer sizes, every digest, the
// root, and proofs — and same-shape builds must share one shape entry.
func TestLevelShapeCache(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 32, 128} {
		blocks := randBlocks(r, n)
		tr, err := Build(blocks)
		if err != nil {
			t.Fatal(err)
		}
		// Naive reference: hash levels with per-level allocations.
		cur := make([]sha2.Digest, n)
		for i := range blocks {
			b := blocks[i]
			cur[i] = sha2.Compress((*[sha2.BlockSize]byte)(&b))
		}
		level := 0
		for {
			if len(tr.layers[level]) != len(cur) {
				t.Fatalf("n=%d: layer %d has %d nodes, want %d", n, level, len(tr.layers[level]), len(cur))
			}
			for i := range cur {
				if tr.layers[level][i] != cur[i] {
					t.Fatalf("n=%d: layer %d node %d differs from naive build", n, level, i)
				}
			}
			if len(cur) == 1 {
				break
			}
			next := make([]sha2.Digest, len(cur)/2)
			for i := range next {
				next[i] = sha2.Compress2(&cur[2*i], &cur[2*i+1])
			}
			cur = next
			level++
		}
		if tr.Root() != cur[0] {
			t.Fatalf("n=%d: root differs from naive build", n)
		}
	}
	// Shape entries are shared across same-shape builds.
	if shapeFor(128) != shapeFor(128) {
		t.Fatal("same leaf count produced distinct shape entries")
	}
	s := shapeFor(8)
	if s.levels != 3 || s.total != 7 {
		t.Fatalf("shape for 8 leaves: levels=%d total=%d, want 3/7", s.levels, s.total)
	}
}

func TestSingleLeaf(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	b := randBlocks(r, 1)
	tr, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	blk := b[0]
	if tr.Root() != sha2.Compress((*[sha2.BlockSize]byte)(&blk)) {
		t.Fatal("single-leaf root should be the leaf hash")
	}
	if tr.Depth() != 0 || tr.NumLeaves() != 1 || tr.NumCompressions() != 0 {
		t.Fatalf("depth=%d leaves=%d comps=%d", tr.Depth(), tr.NumLeaves(), tr.NumCompressions())
	}
	p, err := tr.Prove(0)
	if err != nil || !Verify(tr.Root(), p) {
		t.Fatalf("single-leaf proof failed: %v", err)
	}
}

func TestRootMatchesManualComputation(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	blocks := randBlocks(r, 4)
	tr, _ := Build(blocks)
	var l [4]sha2.Digest
	for i := range blocks {
		b := blocks[i]
		l[i] = sha2.Compress((*[sha2.BlockSize]byte)(&b))
	}
	n01 := sha2.Compress2(&l[0], &l[1])
	n23 := sha2.Compress2(&l[2], &l[3])
	want := sha2.Compress2(&n01, &n23)
	if tr.Root() != want {
		t.Fatal("root mismatch vs manual computation")
	}
	if tr.NumCompressions() != 3 {
		t.Fatalf("compressions = %d, want 3", tr.NumCompressions())
	}
}

func TestProveVerifyAllLeaves(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 8, 64} {
		tr, _ := Build(randBlocks(r, n))
		for i := 0; i < n; i++ {
			p, err := tr.Prove(i)
			if err != nil {
				t.Fatal(err)
			}
			if len(p.Siblings) != tr.Depth() {
				t.Fatalf("path length %d want %d", len(p.Siblings), tr.Depth())
			}
			if !Verify(tr.Root(), p) {
				t.Fatalf("n=%d leaf=%d verify failed", n, i)
			}
		}
		if _, err := tr.Prove(n); err == nil {
			t.Fatal("Prove accepted out-of-range index")
		}
		if _, err := tr.Prove(-1); err == nil {
			t.Fatal("Prove accepted negative index")
		}
		if _, err := tr.Leaf(n); err == nil {
			t.Fatal("Leaf accepted out-of-range index")
		}
	}
}

func TestTamperDetection(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	tr, _ := Build(randBlocks(r, 16))
	p, _ := tr.Prove(5)
	root := tr.Root()

	bad := *p
	bad.Leaf[0] ^= 1
	if Verify(root, &bad) {
		t.Fatal("accepted tampered leaf")
	}

	bad = *p
	bad.Siblings = append([]sha2.Digest{}, p.Siblings...)
	bad.Siblings[2][7] ^= 1
	if Verify(root, &bad) {
		t.Fatal("accepted tampered sibling")
	}

	bad = *p
	bad.Index = 6
	if Verify(root, &bad) {
		t.Fatal("accepted wrong index")
	}

	badRoot := root
	badRoot[31] ^= 1
	if Verify(badRoot, p) {
		t.Fatal("accepted wrong root")
	}

	if Verify(root, nil) {
		t.Fatal("accepted nil proof")
	}
	short := *p
	short.Index = 1 << 20
	if Verify(root, &short) {
		t.Fatal("accepted index beyond claimed depth")
	}
}

func TestPropertyAnyBlockFlipChangesRoot(t *testing.T) {
	rsrc := rand.New(rand.NewSource(5))
	f := func(seed int64, leafPick, bytePick uint8) bool {
		r := rand.New(rand.NewSource(seed))
		blocks := randBlocks(r, 8)
		t1, _ := Build(blocks)
		i := int(leafPick) % 8
		j := int(bytePick) % sha2.BlockSize
		blocks[i][j] ^= 0x01
		t2, _ := Build(blocks)
		return t1.Root() != t2.Root()
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rsrc}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPadBlocks(t *testing.T) {
	if got := PadBlocks(nil); len(got) != 0 {
		t.Fatal("pad of empty should stay empty")
	}
	b := make([]Block, 5)
	p := PadBlocks(b)
	if len(p) != 8 {
		t.Fatalf("padded to %d", len(p))
	}
	b = make([]Block, 8)
	if got := PadBlocks(b); len(got) != 8 {
		t.Fatal("power-of-two input should be unchanged")
	}
}

func TestColumns(t *testing.T) {
	cols := [][]field.Element{
		{field.NewElement(1), field.NewElement(2)},
		{field.NewElement(3), field.NewElement(4)},
		{field.NewElement(5), field.NewElement(6)},
		{field.NewElement(7), field.NewElement(8)},
	}
	tr, err := BuildFromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := tr.Prove(2)
	if !VerifyElements(tr.Root(), p, cols[2]) {
		t.Fatal("column verify failed")
	}
	if VerifyElements(tr.Root(), p, cols[1]) {
		t.Fatal("accepted wrong column preimage")
	}
	if VerifyElements(tr.Root(), nil, cols[2]) {
		t.Fatal("accepted nil proof")
	}
	wrong := append([]field.Element{}, cols[2]...)
	wrong[0] = field.NewElement(999)
	if VerifyElements(tr.Root(), p, wrong) {
		t.Fatal("accepted tampered column")
	}
}

func TestSecondLevelTreeOfRoots(t *testing.T) {
	// The system (§4) builds a tree whose leaves are subtree roots.
	r := rand.New(rand.NewSource(6))
	var roots []sha2.Digest
	var subtrees []*Tree
	for i := 0; i < 4; i++ {
		st, _ := Build(randBlocks(r, 8))
		subtrees = append(subtrees, st)
		roots = append(roots, st.Root())
	}
	top, err := BuildFromDigests(roots)
	if err != nil {
		t.Fatal(err)
	}
	// Prove subtree 3's root under the top tree, and a leaf under subtree 3:
	// chaining both proofs links a data block to the global root.
	pTop, _ := top.Prove(3)
	if !Verify(top.Root(), pTop) || pTop.Leaf != subtrees[3].Root() {
		t.Fatal("top-level proof failed")
	}
	pLeaf, _ := subtrees[3].Prove(5)
	if !Verify(subtrees[3].Root(), pLeaf) {
		t.Fatal("subtree proof failed")
	}
}

func BenchmarkBuild4096(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	blocks := randBlocks(r, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(blocks); err != nil {
			b.Fatal(err)
		}
	}
}
