// Package merkle implements the Merkle-tree commitment module of BatchZK
// (§2.2, §3.1 of the paper).
//
// Leaves are 512-bit data blocks hashed with the raw SHA-256 compression
// function; interior nodes hash the concatenation of their two children
// with one further compression (sha2.Compress2). A tree over N blocks
// therefore costs exactly 2N−1 compressions — the figure the paper's
// thread-allocation scheme (N + N/2 + … + 1 ≈ 2N) is built on.
//
// The package provides single-tree construction, authentication-path
// proofs, verification, and helpers to commit vectors of field elements
// (used by the polynomial commitment, where each column of the encoded
// matrix becomes one leaf).
package merkle

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"batchzk/internal/field"
	"batchzk/internal/par"
	"batchzk/internal/sha2"
)

// Parallel grain thresholds: levels/leaf batches below these sizes run
// serially, since a compression is ~100ns and chunk dispatch is not free.
// Package vars so the parallel-vs-serial property tests can force the
// parallel path at small sizes.
var (
	parallelNodes   = 256 // interior nodes per level
	parallelLeaves  = 256 // leaf blocks hashed in Build
	parallelColumns = 4   // columns in HashColumns
)

// Block is a 512-bit input block, the unit the paper's Merkle module
// consumes.
type Block [sha2.BlockSize]byte

// Tree is a fully materialized Merkle tree. Layer 0 holds the leaf
// digests; the last layer holds the single root.
type Tree struct {
	layers [][]sha2.Digest
}

// ErrEmpty is returned when building a tree over no data.
var ErrEmpty = errors.New("merkle: empty input")

// Build constructs a tree over 512-bit blocks. The block count must be a
// positive power of two (pad with PadBlocks if needed).
func Build(blocks []Block) (*Tree, error) {
	n := len(blocks)
	if n == 0 {
		return nil, ErrEmpty
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("merkle: %d blocks is not a power of two", n)
	}
	leaves := make([]sha2.Digest, n)
	w := 0
	if n < parallelLeaves {
		w = 1
	}
	par.ForWidth(w, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b := blocks[i]
			leaves[i] = sha2.Compress((*[sha2.BlockSize]byte)(&b))
		}
	})
	return fromLeaves(leaves), nil
}

// BuildFromDigests constructs a tree whose leaves are pre-computed digests
// (e.g. the roots of subtree commitments, as in the system's second-level
// tree in §4). The count must be a positive power of two.
func BuildFromDigests(leaves []sha2.Digest) (*Tree, error) {
	n := len(leaves)
	if n == 0 {
		return nil, ErrEmpty
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("merkle: %d leaves is not a power of two", n)
	}
	cp := make([]sha2.Digest, n)
	copy(cp, leaves)
	return fromLeaves(cp), nil
}

// HashElements maps a vector of field elements to one leaf digest by
// hashing their canonical encodings. It is how the polynomial commitment
// turns a matrix column into a Merkle leaf.
func HashElements(es []field.Element) sha2.Digest {
	var h sha2.Hasher
	h.Reset()
	return HashElementsWith(&h, es)
}

// HashElementsWith is HashElements into a caller-owned hasher (already
// reset), which column loops reuse instead of allocating one per column.
func HashElementsWith(h *sha2.Hasher, es []field.Element) sha2.Digest {
	for i := range es {
		b := es[i].ToBytes()
		h.Write(b[:])
	}
	return h.Sum()
}

// HashColumns hashes every column to its leaf digest, in parallel across
// columns with one reused hasher per worker. It is the leaf-production
// half of BuildFromColumns, exposed so callers that produce columns
// lazily (the polynomial commitment) can skip materializing them.
func HashColumns(cols [][]field.Element) []sha2.Digest {
	leaves := make([]sha2.Digest, len(cols))
	w := 0
	if len(cols) < parallelColumns {
		w = 1
	}
	par.ForScratch(w, len(cols), func(s *par.Scratch, lo, hi int) {
		for j := lo; j < hi; j++ {
			leaves[j] = HashElementsWith(s.Hasher(), cols[j])
		}
	})
	return leaves
}

// BuildFromColumns commits to a matrix given by its columns: each column
// is hashed to a leaf and the tree built above them. Column count must be
// a power of two.
func BuildFromColumns(cols [][]field.Element) (*Tree, error) {
	return BuildFromDigests(HashColumns(cols))
}

// PadBlocks appends zero blocks until the length is a power of two.
func PadBlocks(blocks []Block) []Block {
	n := len(blocks)
	if n == 0 {
		return blocks
	}
	want := 1
	for want < n {
		want <<= 1
	}
	for len(blocks) < want {
		blocks = append(blocks, Block{})
	}
	return blocks
}

// levelShape is the cached interior layout of a tree over n leaves: the
// offset of each interior level inside one flat arena of n−1 digests.
// Every tree of a given leaf count shares the same shape, and batch
// workloads build thousands of same-shape trees (one per committed
// matrix), so the layout is computed once per shape.
type levelShape struct {
	levels  int   // interior levels above the leaves (log₂ n)
	offsets []int // offsets[l]: arena offset of interior level l
	total   int   // arena length, n − 1
}

var levelShapes sync.Map // leafCount → *levelShape

func shapeFor(n int) *levelShape {
	if s, ok := levelShapes.Load(n); ok {
		return s.(*levelShape)
	}
	s := &levelShape{}
	for sz := n / 2; sz >= 1; sz /= 2 {
		s.offsets = append(s.offsets, s.total)
		s.total += sz
		s.levels++
	}
	actual, _ := levelShapes.LoadOrStore(n, s)
	return actual.(*levelShape)
}

// fromLeaves builds the interior layers bottom-up. Each level's nodes are
// independent, so a level hashes in parallel (the paper's §3.1 thread
// allocation: N/2 + N/4 + … threads per level); levels themselves are
// sequential since each consumes the previous one. All interior levels
// live in one flat arena sliced by the cached per-shape layout, so a
// same-shape build does two allocations instead of log₂ n.
func fromLeaves(leaves []sha2.Digest) *Tree {
	n := len(leaves)
	if n == 1 {
		return &Tree{layers: [][]sha2.Digest{leaves}}
	}
	s := shapeFor(n)
	arena := make([]sha2.Digest, s.total)
	t := &Tree{layers: make([][]sha2.Digest, 0, s.levels+1)}
	t.layers = append(t.layers, leaves)
	cur := leaves
	for l := 0; l < s.levels; l++ {
		next := arena[s.offsets[l] : s.offsets[l]+len(cur)/2]
		hashLevel(next, cur)
		t.layers = append(t.layers, next)
		cur = next
	}
	return t
}

// hashLevel fills next[i] = H(cur[2i] ‖ cur[2i+1]) for one tree level.
// Writes are disjoint by index, so any chunking is bit-identical to the
// serial loop.
func hashLevel(next, cur []sha2.Digest) {
	w := 0
	if len(next) < parallelNodes {
		w = 1
	}
	par.ForWidth(w, len(next), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			next[i] = sha2.Compress2(&cur[2*i], &cur[2*i+1])
		}
	})
}

// Root returns the Merkle root.
func (t *Tree) Root() sha2.Digest {
	top := t.layers[len(t.layers)-1]
	return top[0]
}

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int { return len(t.layers[0]) }

// Depth returns the number of hashing layers above the leaves (log2 N).
func (t *Tree) Depth() int { return len(t.layers) - 1 }

// Leaf returns the digest of leaf i.
func (t *Tree) Leaf(i int) (sha2.Digest, error) {
	if i < 0 || i >= t.NumLeaves() {
		return sha2.Digest{}, fmt.Errorf("merkle: leaf %d out of range [0,%d)", i, t.NumLeaves())
	}
	return t.layers[0][i], nil
}

// NumCompressions reports how many compression-function calls were needed
// to build this tree from digests upward; trees built from raw blocks add
// one compression per leaf. Used by the performance model for calibration.
func (t *Tree) NumCompressions() int {
	total := 0
	for _, l := range t.layers[1:] {
		total += len(l)
	}
	return total
}

// Proof is an authentication path proving that a leaf digest belongs to a
// root. Siblings are ordered leaf-to-root.
type Proof struct {
	Index    int
	Leaf     sha2.Digest
	Siblings []sha2.Digest
}

// Prove returns the authentication path for leaf i.
func (t *Tree) Prove(i int) (*Proof, error) {
	if i < 0 || i >= t.NumLeaves() {
		return nil, fmt.Errorf("merkle: leaf %d out of range [0,%d)", i, t.NumLeaves())
	}
	p := &Proof{Index: i, Leaf: t.layers[0][i]}
	idx := i
	for l := 0; l < t.Depth(); l++ {
		p.Siblings = append(p.Siblings, t.layers[l][idx^1])
		idx >>= 1
	}
	return p, nil
}

// Verify checks an authentication path against a root.
func Verify(root sha2.Digest, p *Proof) bool {
	if p == nil || p.Index < 0 {
		return false
	}
	if uint(bits.Len(uint(p.Index))) > uint(len(p.Siblings)) {
		return false // index does not fit in the claimed tree depth
	}
	cur := p.Leaf
	idx := p.Index
	for _, sib := range p.Siblings {
		s := sib
		if idx&1 == 0 {
			cur = sha2.Compress2(&cur, &s)
		} else {
			cur = sha2.Compress2(&s, &cur)
		}
		idx >>= 1
	}
	return cur == root
}

// VerifyElements checks that a claimed column of field elements is the
// preimage of the proof's leaf and that the path is valid.
func VerifyElements(root sha2.Digest, p *Proof, column []field.Element) bool {
	if p == nil || HashElements(column) != p.Leaf {
		return false
	}
	return Verify(root, p)
}
