package merkle

import (
	"fmt"
	"sort"

	"batchzk/internal/sha2"
)

// MultiProof is a batched authentication proof for several leaves of one
// tree: instead of one full path per leaf, it carries only the sibling
// digests that the verifier cannot reconstruct, deduplicated across the
// paths. For the polynomial commitment's spot-checks (t columns of the
// same tree) this shrinks the openings substantially — the dominant part
// of the "several MB" proofs of this protocol family.
type MultiProof struct {
	// Indices of the proven leaves, strictly increasing.
	Indices []int
	// Leaves holds the digests of the proven leaves, aligned to Indices.
	Leaves []sha2.Digest
	// Siblings holds the needed sibling digests in the deterministic
	// order the verifier consumes them (layer by layer, left to right).
	Siblings []sha2.Digest
	// NumLeaves is the tree width the proof was generated for.
	NumLeaves int
}

// ProveMulti returns a deduplicated batched proof for the given leaf
// indices (duplicates are coalesced).
func (t *Tree) ProveMulti(indices []int) (*MultiProof, error) {
	if len(indices) == 0 {
		return nil, fmt.Errorf("merkle: no indices to prove")
	}
	uniq := map[int]bool{}
	for _, i := range indices {
		if i < 0 || i >= t.NumLeaves() {
			return nil, fmt.Errorf("merkle: leaf %d out of range [0,%d)", i, t.NumLeaves())
		}
		uniq[i] = true
	}
	sorted := make([]int, 0, len(uniq))
	for i := range uniq {
		sorted = append(sorted, i)
	}
	sort.Ints(sorted)

	mp := &MultiProof{Indices: sorted, NumLeaves: t.NumLeaves()}
	for _, i := range sorted {
		mp.Leaves = append(mp.Leaves, t.layers[0][i])
	}

	// Walk up layer by layer: at each layer, the known set is the parents
	// of the previous known set; a sibling is emitted only if it is not
	// itself known.
	known := append([]int{}, sorted...)
	for l := 0; l < t.Depth(); l++ {
		var next []int
		for k := 0; k < len(known); k++ {
			idx := known[k]
			sib := idx ^ 1
			if k+1 < len(known) && known[k+1] == sib {
				k++ // sibling is known: both children present, no emission
			} else {
				mp.Siblings = append(mp.Siblings, t.layers[l][sib])
			}
			next = append(next, idx/2)
		}
		known = next
	}
	return mp, nil
}

// VerifyMulti checks a batched proof against a root.
func VerifyMulti(root sha2.Digest, mp *MultiProof) bool {
	if mp == nil || len(mp.Indices) == 0 || len(mp.Indices) != len(mp.Leaves) {
		return false
	}
	if mp.NumLeaves <= 0 || mp.NumLeaves&(mp.NumLeaves-1) != 0 {
		return false
	}
	depth := 0
	for 1<<depth < mp.NumLeaves {
		depth++
	}
	// Indices must be strictly increasing and in range.
	for k, i := range mp.Indices {
		if i < 0 || i >= mp.NumLeaves {
			return false
		}
		if k > 0 && i <= mp.Indices[k-1] {
			return false
		}
	}

	type node struct {
		idx int
		d   sha2.Digest
	}
	frontier := make([]node, len(mp.Indices))
	for k := range mp.Indices {
		frontier[k] = node{idx: mp.Indices[k], d: mp.Leaves[k]}
	}
	sibPos := 0
	for l := 0; l < depth; l++ {
		var next []node
		for k := 0; k < len(frontier); k++ {
			cur := frontier[k]
			sib := cur.idx ^ 1
			var sibDigest sha2.Digest
			if k+1 < len(frontier) && frontier[k+1].idx == sib {
				sibDigest = frontier[k+1].d
				k++
			} else {
				if sibPos >= len(mp.Siblings) {
					return false
				}
				sibDigest = mp.Siblings[sibPos]
				sibPos++
			}
			var parent sha2.Digest
			if cur.idx&1 == 0 {
				parent = sha2.Compress2(&cur.d, &sibDigest)
			} else {
				parent = sha2.Compress2(&sibDigest, &cur.d)
			}
			next = append(next, node{idx: cur.idx / 2, d: parent})
		}
		frontier = next
	}
	if sibPos != len(mp.Siblings) || len(frontier) != 1 {
		return false
	}
	return frontier[0].d == root
}

// MultiProofSize returns the sibling count of the proof — the quantity
// dedup saves versus len(Indices)·depth for independent paths.
func (mp *MultiProof) MultiProofSize() int { return len(mp.Siblings) }
