package merkle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"batchzk/internal/par"
	"batchzk/internal/sha2"
)

// Frontier-vs-batch bit-identity: streaming leaves through the
// FrontierBuilder must land on exactly the root (and compression count)
// of the batch builders, at every runtime width — the parallel leaf
// hashing below the frontier must not perturb the ordered fold above it.

func TestFrontierBitIdenticalToBuild(t *testing.T) {
	lowerGrains(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << rng.Intn(8) // 1..128 blocks (power of two required)
		blocks := make([]Block, n)
		for i := range blocks {
			rng.Read(blocks[i][:])
		}
		for _, w := range testWidths() {
			par.SetWidth(w)
			tree, err := Build(blocks)
			if err != nil {
				return false
			}
			fb := NewFrontierBuilder()
			for _, b := range blocks {
				fb.AddBlock(b)
			}
			root, err := fb.Root()
			if err != nil || root != tree.Root() {
				return false
			}
			if fb.NumCompressions() != tree.NumCompressions() {
				return false
			}
			if fb.Count() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFrontierBitIdenticalToBuildFromDigests(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		leaves := randomDigests(n, int64(n))
		tree, err := BuildFromDigests(leaves)
		if err != nil {
			t.Fatal(err)
		}
		fb := NewFrontierBuilder()
		for _, d := range leaves {
			fb.Add(d)
		}
		root, err := fb.Root()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if root != tree.Root() {
			t.Fatalf("n=%d: frontier root differs from batch root", n)
		}
	}
}

func TestFrontierRejectsBadCounts(t *testing.T) {
	fb := NewFrontierBuilder()
	if _, err := fb.Root(); err == nil {
		t.Fatal("empty frontier produced a root")
	}
	// Odd (non-power-of-two) counts are rejected, like the batch builders.
	for _, d := range randomDigests(3, 7) {
		fb.Add(d)
	}
	if _, err := fb.Root(); err == nil {
		t.Fatal("3-leaf frontier produced a root")
	}
	// The builder stays usable: one more leaf makes it a power of two.
	fb.Add(randomDigests(1, 9)[0])
	if _, err := fb.Root(); err != nil {
		t.Fatalf("4-leaf frontier: %v", err)
	}
}

// TestFrontierMemoryIsLogarithmic pins the O(log n) claim: after n
// leaves the frontier slice has at most log2(n)+1 slots.
func TestFrontierMemoryIsLogarithmic(t *testing.T) {
	fb := NewFrontierBuilder()
	for _, d := range randomDigests(1024, 11) {
		fb.Add(d)
	}
	if len(fb.frontier) > 11 {
		t.Fatalf("frontier holds %d digests for 1024 leaves, want ≤ 11", len(fb.frontier))
	}
}

func randomDigests(n int, seed int64) []sha2.Digest {
	rng := rand.New(rand.NewSource(seed))
	out := make([]sha2.Digest, n)
	for i := range out {
		rng.Read(out[i][:])
	}
	return out
}
