package merkle

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"batchzk/internal/field"
	"batchzk/internal/par"
	"batchzk/internal/sha2"
)

// Parallel-vs-serial bit-identity: every parallel path must produce the
// exact digests of the serial loop for any width. Grain thresholds are
// lowered so the parallel paths trigger at test sizes, and the global
// runtime width is toggled between runs (package tests run sequentially,
// so the global toggle is race-free).

func lowerGrains(t *testing.T) {
	t.Helper()
	oldN, oldL, oldC := parallelNodes, parallelLeaves, parallelColumns
	parallelNodes, parallelLeaves, parallelColumns = 1, 1, 1
	t.Cleanup(func() {
		parallelNodes, parallelLeaves, parallelColumns = oldN, oldL, oldC
		par.SetWidth(0)
	})
}

func testWidths() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0)}
}

func TestBuildBitIdenticalAcrossWidths(t *testing.T) {
	lowerGrains(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(4)) // 8..64 blocks (power of two required)
		blocks := make([]Block, n)
		for i := range blocks {
			rng.Read(blocks[i][:])
		}
		var want [32]byte
		for wi, w := range testWidths() {
			par.SetWidth(w)
			tree, err := Build(blocks)
			if err != nil {
				return false
			}
			root := tree.Root()
			if wi == 0 {
				want = root
			} else if root != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHashColumnsBitIdenticalAcrossWidths(t *testing.T) {
	lowerGrains(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Odd column count and odd, non-uniform column lengths: chunk
		// boundaries land mid-range.
		nCols := 3 + 2*rng.Intn(8) // 3..17, odd
		cols := make([][]field.Element, nCols)
		for j := range cols {
			cols[j] = field.RandVector(1 + rng.Intn(13))
		}
		var want []sha2.Digest
		for wi, w := range testWidths() {
			par.SetWidth(w)
			got := HashColumns(cols)
			if wi == 0 {
				want = got
				continue
			}
			for j := range got {
				if got[j] != want[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHashElementsWithMatchesHashElements(t *testing.T) {
	var h sha2.Hasher
	for _, n := range []int{0, 1, 3, 17} {
		es := field.RandVector(n)
		h.Reset()
		if HashElementsWith(&h, es) != HashElements(es) {
			t.Fatalf("n=%d: reused-hasher digest differs", n)
		}
	}
}
