package merkle

import (
	"fmt"

	"batchzk/internal/sha2"
)

// FrontierBuilder is the streaming counterpart of Build/BuildFromDigests:
// leaves are pushed one at a time (in leaf order) and the builder folds
// completed subtrees eagerly, so at any moment it retains only the
// frontier — one pending digest per tree level, O(log n) memory — instead
// of the full 2n−1-node tree. The root it produces is bit-identical to
// the batch builders', which is what lets the out-of-core commitment path
// (pcs.StreamingCommitter) hash an encoded matrix it never materializes.
//
// The merge discipline mirrors the binary carry chain of a counter: leaf
// i arrives, and for every trailing one-bit of the new count a completed
// sibling pair is compressed into its parent. A power-of-two leaf count
// therefore leaves exactly one digest — the root — matching the batch
// builders' contract (they reject non-power-of-two inputs too).
//
// A FrontierBuilder is not safe for concurrent use; it models a single
// ordered ingest stream. Parallelism lives below it (the leaves
// themselves are hashed in parallel) and above it (many builders run
// concurrently, one per in-flight proof).
type FrontierBuilder struct {
	// frontier[l] holds the pending (left-sibling) digest at level l;
	// occupancy is tracked by the bits of count, exactly like a binary
	// counter's carry chain.
	frontier []sha2.Digest
	count    int
	// compressions counts Compress2 calls, mirroring Tree.NumCompressions
	// for the performance model.
	compressions int
}

// NewFrontierBuilder returns an empty streaming builder.
func NewFrontierBuilder() *FrontierBuilder {
	return &FrontierBuilder{}
}

// Add pushes the next leaf digest. Completed sibling pairs fold
// immediately, so the builder never holds more than one digest per level.
func (f *FrontierBuilder) Add(leaf sha2.Digest) {
	cur := leaf
	level := 0
	// Trailing one-bits of count are the levels with a pending left
	// sibling: each merges with cur and carries upward.
	for n := f.count; n&1 == 1; n >>= 1 {
		cur = sha2.Compress2(&f.frontier[level], &cur)
		f.compressions++
		level++
	}
	for len(f.frontier) <= level {
		f.frontier = append(f.frontier, sha2.Digest{})
	}
	f.frontier[level] = cur
	f.count++
}

// AddBlock hashes one 512-bit data block into its leaf digest (the same
// leaf rule as Build) and pushes it.
func (f *FrontierBuilder) AddBlock(b Block) {
	f.Add(sha2.Compress((*[sha2.BlockSize]byte)(&b)))
}

// Count returns how many leaves have been pushed.
func (f *FrontierBuilder) Count() int { return f.count }

// NumCompressions reports the interior compressions performed so far;
// after a power-of-two Root it equals Tree.NumCompressions for the same
// leaves.
func (f *FrontierBuilder) NumCompressions() int { return f.compressions }

// Root finalizes the stream. Like the batch builders, it requires a
// positive power-of-two leaf count — at which point the frontier has
// collapsed to the single root digest.
func (f *FrontierBuilder) Root() (sha2.Digest, error) {
	n := f.count
	if n == 0 {
		return sha2.Digest{}, ErrEmpty
	}
	if n&(n-1) != 0 {
		return sha2.Digest{}, fmt.Errorf("merkle: %d streamed leaves is not a power of two", n)
	}
	// A power-of-two count has exactly one set bit: the root's level.
	level := 0
	for 1<<level < n {
		level++
	}
	return f.frontier[level], nil
}
