package merkle

import (
	"testing"

	"batchzk/internal/sha2"
)

// FuzzOpeningProofVerify builds a tree from fuzzer-shaped leaves, opens
// a leaf, and checks that verification accepts exactly the honest proof:
// any single-bit corruption of the leaf, a sibling, or the root must be
// rejected, and an honest proof must never be rejected. (Index
// corruption is deliberately not asserted: with duplicated leaves two
// indices can legitimately share an authentication path.)
func FuzzOpeningProofVerify(f *testing.F) {
	f.Add([]byte("one block of leaf data for the merkle tree......"), uint16(0), uint16(3))
	f.Add([]byte{}, uint16(5), uint16(100))
	f.Add([]byte{0xab}, uint16(1), uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, leafSel, flipSel uint16) {
		// Shape the raw bytes into 64-byte blocks, at least one, padded
		// to a power of two the way the commitment layer does.
		blocks := make([]Block, len(data)/sha2.BlockSize+1)
		for i := range blocks {
			copy(blocks[i][:], data[i*sha2.BlockSize:])
		}
		blocks = PadBlocks(blocks)
		tree, err := Build(blocks)
		if err != nil {
			t.Fatalf("Build rejected padded blocks: %v", err)
		}
		root := tree.Root()

		idx := int(leafSel) % tree.NumLeaves()
		proof, err := tree.Prove(idx)
		if err != nil {
			t.Fatalf("Prove(%d) of %d leaves: %v", idx, tree.NumLeaves(), err)
		}
		if !Verify(root, proof) {
			t.Fatalf("honest proof for leaf %d rejected", idx)
		}

		// One bit flip anywhere in the authentication data must break it.
		flipBit := func(d *sha2.Digest, sel uint16) {
			d[int(sel)%len(d)] ^= 1 << (sel % 8)
		}
		leafCopy := *proof
		flipBit(&leafCopy.Leaf, flipSel)
		if Verify(root, &leafCopy) {
			t.Fatal("proof with corrupted leaf verified")
		}
		if len(proof.Siblings) > 0 {
			sibCopy := *proof
			sibCopy.Siblings = append([]sha2.Digest{}, proof.Siblings...)
			flipBit(&sibCopy.Siblings[int(flipSel)%len(sibCopy.Siblings)], flipSel)
			if Verify(root, &sibCopy) {
				t.Fatal("proof with corrupted sibling verified")
			}
		}
		badRoot := root
		flipBit(&badRoot, flipSel)
		if Verify(badRoot, proof) {
			t.Fatal("proof verified against corrupted root")
		}

		// A proof claiming a depth its index cannot fit is malformed.
		if tree.Depth() > 0 {
			short := *proof
			short.Siblings = nil
			short.Index = tree.NumLeaves() - 1
			if tree.NumLeaves() > 1 && Verify(root, &short) {
				t.Fatal("truncated proof with out-of-range index verified")
			}
		}
	})
}
