package pipeline

import (
	"errors"
	"testing"

	"batchzk/internal/encoder"
	"batchzk/internal/field"
)

// TestEncodePoisonedTaskIsolated: one malformed message poisons only its
// own task; every other codeword still matches the sequential encoder.
func TestEncodePoisonedTaskIsolated(t *testing.T) {
	enc, err := encoder.New(128, encoder.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([][]field.Element, 6)
	for i := range msgs {
		msgs[i] = field.RandVector(128)
	}
	msgs[2] = field.RandVector(64) // wrong length: fails in stage 0

	got, err := BatchEncode(enc, msgs)
	if err == nil {
		t.Fatal("malformed task did not surface an error")
	}
	var te *TaskErrors
	if !errors.As(err, &te) {
		t.Fatalf("error is not *TaskErrors: %v", err)
	}
	if te.Module != "encode" || len(te.Tasks) != 1 || te.Tasks[0].Task != 2 || te.Tasks[0].Stage != 0 {
		t.Fatalf("bad aggregate: %+v", te)
	}
	var single *TaskError
	if !errors.As(err, &single) || single.Task != 2 {
		t.Fatalf("errors.As does not reach the TaskError: %v", err)
	}
	// Partial results: the healthy tasks' codewords are intact.
	for i := range msgs {
		if i == 2 {
			if got[i] != nil {
				t.Fatal("poisoned task produced a codeword")
			}
			continue
		}
		want, err := enc.Encode(msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !field.VectorEqual(got[i], want) {
			t.Fatalf("task %d codeword corrupted by neighbor's failure", i)
		}
	}
}

// TestSumcheckPanicIsolated: a panicking challenge oracle poisons only
// its task — the double-buffer discipline and the neighbors survive.
func TestSumcheckPanicIsolated(t *testing.T) {
	const nVars, batch = 4, 5
	tables := make([][]field.Element, batch)
	challenges := make([][]field.Element, batch)
	for i := range tables {
		tables[i] = field.RandVector(1 << nVars)
		challenges[i] = field.RandVector(nVars)
	}
	results, err := BatchSumcheck(tables, func(task, round int, _, _ field.Element) field.Element {
		if task == 1 && round == 2 {
			panic("oracle corrupted")
		}
		return challenges[task][round]
	})
	var te *TaskErrors
	if !errors.As(err, &te) {
		t.Fatalf("want *TaskErrors, got %v", err)
	}
	if len(te.Tasks) != 1 || te.Tasks[0].Task != 1 || te.Tasks[0].Stage != 2 {
		t.Fatalf("bad aggregate: %+v", te)
	}
	// The healthy tasks reran through the shared buffers untouched:
	// compare against an all-healthy run of the same inputs.
	clean, cerr := BatchSumcheck(tables, func(task, round int, _, _ field.Element) field.Element {
		return challenges[task][round]
	})
	if cerr != nil {
		t.Fatal(cerr)
	}
	for i := range tables {
		if i == 1 {
			continue
		}
		for r := range clean[i].Proof.Rounds {
			if results[i].Proof.Rounds[r] != clean[i].Proof.Rounds[r] {
				t.Fatalf("task %d round %d corrupted by neighbor's panic", i, r)
			}
		}
		if !results[i].Final.Equal(&clean[i].Final) {
			t.Fatalf("task %d final corrupted", i)
		}
	}
}

// TestMultipleTaskErrorsAggregated: several poisoned tasks all appear in
// the aggregate, in task order, and the message counts them.
func TestMultipleTaskErrorsAggregated(t *testing.T) {
	enc, err := encoder.New(128, encoder.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([][]field.Element, 5)
	for i := range msgs {
		msgs[i] = field.RandVector(128)
	}
	msgs[0] = field.RandVector(1)
	msgs[3] = field.RandVector(1)
	_, err = BatchEncode(enc, msgs)
	var te *TaskErrors
	if !errors.As(err, &te) {
		t.Fatalf("want *TaskErrors, got %v", err)
	}
	if len(te.Tasks) != 2 || te.Tasks[0].Task != 0 || te.Tasks[1].Task != 3 {
		t.Fatalf("bad aggregate: %+v", te)
	}
}
