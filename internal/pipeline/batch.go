package pipeline

import (
	"errors"
	"fmt"

	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/merkle"
	"batchzk/internal/sched"
	"batchzk/internal/sha2"
	"batchzk/internal/sumcheck"
)

// TaskError records one poisoned task: the stage it first failed in and
// the underlying cause (errors.Is/As reach through it).
type TaskError struct {
	Task  int
	Stage int
	Err   error
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("task %d failed at stage %d: %v", e.Task, e.Stage, e.Err)
}

func (e *TaskError) Unwrap() error { return e.Err }

// TaskErrors aggregates every poisoned task of one pipelined run. The
// schedule does not abort on a task failure: the failing task's
// remaining slots are skipped (its per-task state is simply never
// advanced, which cannot disturb the double-buffer discipline — the
// other tasks' slots read and write exactly the buffers they would
// have), and the healthy tasks run to completion. Callers receive both
// the surviving outputs and this aggregate.
type TaskErrors struct {
	Module string
	Tasks  []TaskError
}

func (e *TaskErrors) Error() string {
	first := &e.Tasks[0]
	if len(e.Tasks) == 1 {
		return fmt.Sprintf("pipeline: %s: %v", e.Module, first)
	}
	return fmt.Sprintf("pipeline: %s: %d tasks failed; first: %v", e.Module, len(e.Tasks), first)
}

// Unwrap exposes every task error to errors.Is/As.
func (e *TaskErrors) Unwrap() []error {
	errs := make([]error, len(e.Tasks))
	for i := range e.Tasks {
		errs[i] = &e.Tasks[i]
	}
	return errs
}

// partialResult hands a schedule's outputs back together with its error:
// on a *TaskErrors the surviving tasks' outputs are valid and returned;
// any other error (invalid geometry, buffer-discipline violation) is
// fatal and yields no results.
func partialResult[T any](results []T, err error) ([]T, error) {
	if err == nil {
		return results, nil
	}
	var te *TaskErrors
	if errors.As(err, &te) {
		return results, err
	}
	return nil, err
}

// runSchedule drives a software pipeline: numStages stages, one task
// entering per cycle, every stage busy on a different task within a cycle
// (the schedule of Figure 4b). It delegates to the unified execution
// layer's cycle-synchronous discipline (sched.RunCycles) — stages run in
// descending order within a cycle so a cycle's writes never overtake its
// reads, which the modules' shared double buffers require — and converts
// the per-task slot errors into this package's *TaskErrors aggregate.
//
// When a process-wide telemetry sink is enabled, each (stage, task) slot
// becomes a "pipeline" layer span on the stage's track under one
// module-level root span, each cycle bumps a counter, and per-slot wall
// time feeds a module histogram — so the Figure 4b schedule is directly
// inspectable in the Chrome trace export.
func runSchedule(module string, numTasks, numStages int, process func(cycle, stage, task int) error, endCycle func(cycle int) error) error {
	if numTasks <= 0 || numStages <= 0 {
		return fmt.Errorf("pipeline: need positive task and stage counts")
	}
	slots, err := sched.RunCycles(numTasks, numStages, process, endCycle, sched.CycleConfig{
		Layer:  "pipeline",
		Module: module,
	})
	if err != nil {
		return err
	}
	if len(slots) > 0 {
		agg := &TaskErrors{Module: module, Tasks: make([]TaskError, len(slots))}
		for i, s := range slots {
			agg.Tasks[i] = TaskError{Task: s.Task, Stage: s.Stage, Err: s.Err}
		}
		return agg
	}
	return nil
}

// BatchMerkle builds one Merkle tree per task by streaming the tasks
// through layer-dedicated stages (§3.1): stage 0 hashes the 512-bit blocks
// into leaves, stage ℓ≥1 builds layer ℓ from layer ℓ−1. Every input must
// have the same power-of-two block count. It returns the roots, which are
// bit-identical to merkle.Build on each input.
func BatchMerkle(tasks [][]merkle.Block) ([]sha2.Digest, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("pipeline: no merkle tasks")
	}
	n := len(tasks[0])
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("pipeline: %d blocks is not a positive power of two", n)
	}
	depth := 0
	for 1<<depth < n {
		depth++
	}
	for i, tk := range tasks {
		if len(tk) != n {
			return nil, fmt.Errorf("pipeline: task %d has %d blocks, want %d", i, len(tk), n)
		}
	}

	numStages := depth + 1 // leaf hashing + one stage per interior layer
	// cur[task] holds the task's current layer while it moves through.
	cur := make([][]sha2.Digest, len(tasks))
	roots := make([]sha2.Digest, len(tasks))

	err := runSchedule("merkle", len(tasks), numStages, func(_, stage, task int) error {
		if stage == 0 {
			// Dynamic loading: only now does this task's data enter the
			// device; hash every block into a leaf digest.
			leaves := make([]sha2.Digest, n)
			for i := range tasks[task] {
				b := tasks[task][i]
				leaves[i] = sha2.Compress((*[sha2.BlockSize]byte)(&b))
			}
			cur[task] = leaves
			return nil
		}
		prev := cur[task]
		next := make([]sha2.Digest, len(prev)/2)
		for i := range next {
			next[i] = sha2.Compress2(&prev[2*i], &prev[2*i+1])
		}
		// Dynamic storing: the consumed layer leaves device memory.
		cur[task] = next
		if stage == numStages-1 {
			roots[task] = next[0]
			cur[task] = nil
		}
		return nil
	}, nil)
	if depth == 0 {
		for t := range tasks {
			if cur[t] != nil {
				roots[t] = cur[t][0]
			}
		}
	}
	return partialResult(roots, err)
}

// SumcheckChallenge supplies the round randomness for one task: called
// with the task index, round number, and the round's message (π_i1, π_i2),
// it returns r_i. The fully pipelined system derives these from Merkle
// roots (§4); tests use fixed vectors to compare against the sequential
// prover.
type SumcheckChallenge func(task, round int, p1, p2 field.Element) field.Element

// SumcheckResult is one task's output from the pipelined module.
type SumcheckResult struct {
	Proof *sumcheck.Proof
	Final field.Element
}

// BatchSumcheck generates one sum-check proof per input table by streaming
// the tables through round-dedicated stages (§3.2). The inter-stage tables
// live in recyclable double buffers with the odd/even read–write
// discipline of Figure 5; the invariant (no buffer both read and written
// in one period) is enforced at every cycle.
func BatchSumcheck(tables [][]field.Element, challenge SumcheckChallenge) ([]SumcheckResult, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("pipeline: no sumcheck tasks")
	}
	size := len(tables[0])
	if size < 2 || size&(size-1) != 0 {
		return nil, fmt.Errorf("pipeline: table size %d is not a power of two ≥ 2", size)
	}
	nVars := 0
	for 1<<nVars < size {
		nVars++
	}
	for i := range tables {
		if len(tables[i]) != size {
			return nil, fmt.Errorf("pipeline: task %d table size %d, want %d", i, len(tables[i]), size)
		}
	}

	// buffers[i] carries the table entering stage i (size 2^{n-i});
	// stage i reads buffers[i] and writes buffers[i+1].
	buffers := make([]*DoubleBuffer[field.Element], nVars+1)
	for i := range buffers {
		buffers[i] = NewDoubleBuffer[field.Element](size >> i)
	}
	results := make([]SumcheckResult, len(tables))
	for t := range results {
		results[t].Proof = &sumcheck.Proof{Rounds: make([]sumcheck.RoundPair, nVars)}
	}

	err := runSchedule("sumcheck", len(tables), nVars, func(_, stage, task int) error {
		in := size >> stage
		half := in / 2
		var src []field.Element
		if stage == 0 {
			src = tables[task] // dynamic loading from host memory
		} else {
			src = buffers[stage].ReadBuf()[:in]
		}
		dst := buffers[stage+1].WriteBuf()[:half]

		var p1, p2 field.Element
		for b := 0; b < half; b++ {
			p1.Add(&p1, &src[b])
			p2.Add(&p2, &src[b+half])
		}
		results[task].Proof.Rounds[stage] = sumcheck.RoundPair{P1: p1, P2: p2}
		r := challenge(task, stage, p1, p2)
		for b := 0; b < half; b++ {
			dst[b].Lerp(&r, &src[b], &src[b+half])
		}
		if stage == nVars-1 {
			results[task].Final = dst[0]
		}
		return nil
	}, func(int) error {
		for _, db := range buffers {
			if err := db.Advance(); err != nil {
				return err
			}
		}
		return nil
	})
	return partialResult(results, err)
}

// BatchEncode encodes one message per task by streaming the tasks through
// the two interconnected pipelines of Figure 6: a forward pipeline of
// first-matrix multiplications (large → small), the base code, then a
// backward pipeline of second-matrix multiplications (small → large). The
// codewords are bit-identical to enc.Encode on each message.
func BatchEncode(enc *encoder.Encoder, msgs [][]field.Element) ([][]field.Element, error) {
	if len(msgs) == 0 {
		return nil, fmt.Errorf("pipeline: no encoder tasks")
	}
	k := enc.NumStages()
	numStages := 2*k + 1 // forward ×k, base, backward ×k

	type state struct {
		inputs [][]field.Element // stage inputs retained for reassembly
		w      []field.Element   // the growing codeword on the way back
	}
	states := make([]*state, len(msgs))
	out := make([][]field.Element, len(msgs))

	err := runSchedule("encode", len(msgs), numStages, func(_, stage, task int) error {
		switch {
		case stage == 0 && k == 0:
			// Degenerate: base-size messages, single stage.
			if len(msgs[task]) != enc.MessageLen() {
				return fmt.Errorf("pipeline: task %d message length %d, want %d", task, len(msgs[task]), enc.MessageLen())
			}
			cw, err := enc.Encode(msgs[task])
			if err != nil {
				return err
			}
			out[task] = cw
			return nil
		case stage == 0:
			if len(msgs[task]) != enc.MessageLen() {
				return fmt.Errorf("pipeline: task %d message length %d, want %d", task, len(msgs[task]), enc.MessageLen())
			}
			st := &state{inputs: make([][]field.Element, k+1)}
			st.inputs[0] = msgs[task] // dynamic loading
			states[task] = st
			y, err := enc.Stages()[0].First.MulVec(st.inputs[0])
			if err != nil {
				return err
			}
			st.inputs[1] = y
			return nil
		case stage < k:
			// Forward pipeline: first multiplication of level `stage`.
			st := states[task]
			y, err := enc.Stages()[stage].First.MulVec(st.inputs[stage])
			if err != nil {
				return err
			}
			st.inputs[stage+1] = y
			return nil
		case stage == k:
			// Base code between the two pipelines.
			st := states[task]
			base := st.inputs[k]
			w := make([]field.Element, 0, encoder.RateInv*len(base))
			for i := 0; i < encoder.RateInv; i++ {
				w = append(w, base...)
			}
			st.w = w
			return nil
		default:
			// Backward pipeline: second multiplication of level
			// k-1, k-2, …, 0 as the task advances.
			level := 2*k - stage
			st := states[task]
			v, err := enc.Stages()[level].Second.MulVec(st.w)
			if err != nil {
				return err
			}
			cw := make([]field.Element, 0, encoder.RateInv*len(st.inputs[level]))
			cw = append(cw, st.inputs[level]...)
			cw = append(cw, st.w...)
			cw = append(cw, v...)
			st.w = cw
			if stage == numStages-1 {
				out[task] = cw
				states[task] = nil
			}
			return nil
		}
	}, nil)
	return partialResult(out, err)
}
