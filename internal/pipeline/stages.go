package pipeline

import (
	"fmt"
	"sort"

	"batchzk/internal/encoder"
	"batchzk/internal/gpusim"
	"batchzk/internal/perfmodel"
)

// MerkleStages describes the per-layer work of one Merkle tree over
// numBlocks 512-bit blocks: stage 0 hashes the blocks into leaves
// (loading them from host memory — the dynamic loading of §3.1), stage
// ℓ ≥ 1 combines pairs; intermediate layers are stored back to host.
func MerkleStages(numBlocks int, costs perfmodel.OpCosts) ([]gpusim.Stage, error) {
	if numBlocks <= 0 || numBlocks&(numBlocks-1) != 0 {
		return nil, fmt.Errorf("pipeline: %d blocks is not a positive power of two", numBlocks)
	}
	var stages []gpusim.Stage
	stages = append(stages, gpusim.Stage{
		Name:        "merkle/leaves",
		WorkOps:     float64(numBlocks),
		CyclesPerOp: costs.HashCycles,
		MemBytes:    float64(numBlocks) * (perfmodel.HashBlockBytes + perfmodel.HashDigestBytes),
		HostBytesIn: float64(numBlocks) * perfmodel.HashBlockBytes,
	})
	for sz := numBlocks / 2; sz >= 1; sz /= 2 {
		stages = append(stages, gpusim.Stage{
			Name:         "merkle/layer",
			WorkOps:      float64(sz),
			CyclesPerOp:  costs.HashCycles,
			MemBytes:     float64(sz) * 3 * perfmodel.HashDigestBytes,
			HostBytesOut: float64(sz) * perfmodel.HashDigestBytes, // dynamic storing
		})
	}
	return stages, nil
}

// MerkleTaskBytes is the device-memory footprint of one tree flowing
// through the pipeline: the paper's 2N ≈ N + N/2 + … + 1 blocks.
func MerkleTaskBytes(numBlocks int) int64 {
	bytes := int64(numBlocks) * perfmodel.HashBlockBytes
	for sz := numBlocks; sz >= 1; sz /= 2 {
		bytes += int64(sz) * perfmodel.HashDigestBytes
	}
	return bytes
}

// SumcheckStages describes the per-round work of one sum-check proof over
// a 2^nVars table (Algorithm 1): round i reads the 2^{n-i} live entries,
// accumulates the two half sums, and writes the 2^{n-i-1} folded entries.
// The module is memory-bound (§3.2), so MemBytes carries the traffic.
func SumcheckStages(nVars int, costs perfmodel.OpCosts) ([]gpusim.Stage, error) {
	if nVars < 1 {
		return nil, fmt.Errorf("pipeline: need at least one variable")
	}
	var stages []gpusim.Stage
	for i := 0; i < nVars; i++ {
		in := 1 << (nVars - i)
		half := in / 2
		st := gpusim.Stage{
			Name:    "sumcheck/round",
			WorkOps: float64(half),
			// Per pair: one lerp (1 mul + 2 add) + two sum accumulations.
			CyclesPerOp: costs.FieldMulCycles + 4*costs.FieldAddCycles,
			// Traffic: read the full table, write the folded half, and a
			// second pass over the entries for the tree-based partial-sum
			// reduction of §3.2 — the module is memory-bound, as the
			// paper observes.
			MemBytes: float64(in+half) * perfmodel.FieldBytes * 2,
		}
		if i == 0 {
			st.HostBytesIn = float64(in) * perfmodel.FieldBytes // dynamic loading
		}
		stages = append(stages, st)
	}
	return stages, nil
}

// SumcheckTaskBytes is the in-flight footprint of one proof: the double
// buffers of Figure 5 hold two copies of each inter-stage table.
func SumcheckTaskBytes(nVars int) int64 {
	var bytes int64
	for i := 0; i <= nVars; i++ {
		bytes += 2 * int64(1<<(nVars-i)) * perfmodel.FieldBytes
	}
	return bytes
}

// WarpImbalance computes the SIMD waste factor of assigning sparse-matrix
// rows to 32-thread warps (§3.3): a warp's duration is its longest row, so
// the factor is Σ_warps 32·max(rows in warp) / Σ all row lengths.
// With sorted=true, rows are first bucket-sorted by their one-byte length
// (the paper's scheme); otherwise they are taken in natural order.
func WarpImbalance(lens []byte, sorted bool) float64 {
	if len(lens) == 0 {
		return 1
	}
	work := 0
	for _, l := range lens {
		work += int(l)
	}
	if work == 0 {
		return 1
	}
	rows := lens
	if sorted {
		rows = append([]byte(nil), lens...)
		// Bucket sort: 256 buckets, the optimal sort for byte-sized keys.
		var buckets [256]int
		for _, l := range rows {
			buckets[l]++
		}
		idx := 0
		for v := 0; v < 256; v++ {
			for c := 0; c < buckets[v]; c++ {
				rows[idx] = byte(v)
				idx++
			}
		}
	}
	cost := 0
	for i := 0; i < len(rows); i += gpusim.WarpSize {
		end := i + gpusim.WarpSize
		if end > len(rows) {
			end = len(rows)
		}
		maxLen := 0
		for _, l := range rows[i:end] {
			if int(l) > maxLen {
				maxLen = int(l)
			}
		}
		cost += gpusim.WarpSize * maxLen
	}
	return float64(cost) / float64(work)
}

// EncoderStages describes the two-pipeline encoding of Figure 6: forward
// first-matrix multiplications (large → small), the base repetition code,
// then backward second-matrix multiplications (small → large). Work
// counts and row-length distributions come from the actual sampled
// expander matrices; sortRows selects the bucket-sorted warp assignment.
func EncoderStages(enc *encoder.Encoder, costs perfmodel.OpCosts, sortRows bool) []gpusim.Stage {
	var stages []gpusim.Stage
	madCycles := costs.FieldMulCycles + costs.FieldAddCycles
	for k, s := range enc.Stages() {
		st := gpusim.Stage{
			Name:        "encoder/forward",
			WorkOps:     float64(s.First.NumNonZeros()),
			CyclesPerOp: madCycles,
			ParallelOps: float64(s.First.OutDim),
			// Per non-zero: a coalesced coefficient read plus a scattered
			// gather of the input element (partially cached): ≈1.5 field
			// elements of effective traffic.
			MemBytes:      float64(s.First.NumNonZeros()) * 48,
			WarpImbalance: WarpImbalance(s.First.RowLengths(), sortRows),
		}
		if k == 0 {
			st.HostBytesIn = float64(enc.MessageLen()) * perfmodel.FieldBytes
		}
		stages = append(stages, st)
	}
	// Base repetition code: a copy of RateInv × base elements.
	baseLen := enc.MessageLen() >> uint(enc.NumStages())
	stages = append(stages, gpusim.Stage{
		Name:        "encoder/base",
		WorkOps:     float64(encoder.RateInv * baseLen),
		CyclesPerOp: costs.FieldAddCycles,
		MemBytes:    float64(encoder.RateInv*baseLen) * 2 * perfmodel.FieldBytes,
	})
	for k := enc.NumStages() - 1; k >= 0; k-- {
		s := enc.Stages()[k]
		st := gpusim.Stage{
			Name:          "encoder/backward",
			WorkOps:       float64(s.Second.NumNonZeros()),
			CyclesPerOp:   madCycles,
			ParallelOps:   float64(s.Second.OutDim),
			MemBytes:      float64(s.Second.NumNonZeros()) * 48,
			WarpImbalance: WarpImbalance(s.Second.RowLengths(), sortRows),
		}
		if k == 0 {
			st.HostBytesOut = float64(enc.CodewordLen()) * perfmodel.FieldBytes
		}
		stages = append(stages, st)
	}
	return stages
}

// EncoderStagesFromWork builds encoder stages from an analytic work
// profile (encoder.WorkModel) instead of materialized matrices — the form
// the table-scale benchmarks (N up to 2^22) use.
func EncoderStagesFromWork(work []encoder.StageWork, msgLen int, costs perfmodel.OpCosts, sortRows bool) []gpusim.Stage {
	var stages []gpusim.Stage
	madCycles := costs.FieldMulCycles + costs.FieldAddCycles
	for k, sw := range work {
		st := gpusim.Stage{
			Name:          "encoder/forward",
			WorkOps:       float64(sw.FirstNNZ),
			CyclesPerOp:   madCycles,
			ParallelOps:   float64(len(sw.FirstLens)),
			MemBytes:      float64(sw.FirstNNZ) * 48,
			WarpImbalance: WarpImbalance(sw.FirstLens, sortRows),
		}
		if k == 0 {
			st.HostBytesIn = float64(msgLen) * perfmodel.FieldBytes
		}
		stages = append(stages, st)
	}
	baseLen := msgLen >> uint(len(work))
	stages = append(stages, gpusim.Stage{
		Name:        "encoder/base",
		WorkOps:     float64(encoder.RateInv * baseLen),
		CyclesPerOp: costs.FieldAddCycles,
		MemBytes:    float64(encoder.RateInv*baseLen) * 2 * perfmodel.FieldBytes,
	})
	for k := len(work) - 1; k >= 0; k-- {
		sw := work[k]
		st := gpusim.Stage{
			Name:          "encoder/backward",
			WorkOps:       float64(sw.SecondNNZ),
			CyclesPerOp:   madCycles,
			ParallelOps:   float64(len(sw.SecondLens)),
			MemBytes:      float64(sw.SecondNNZ) * 48,
			WarpImbalance: WarpImbalance(sw.SecondLens, sortRows),
		}
		if k == 0 {
			st.HostBytesOut = float64(encoder.RateInv*msgLen) * perfmodel.FieldBytes
		}
		stages = append(stages, st)
	}
	return stages
}

// EncoderTaskBytesForLen computes the in-flight footprint analytically.
func EncoderTaskBytesForLen(msgLen, numStages int) int64 {
	bytes := int64(0)
	for sz := msgLen; sz >= msgLen>>uint(numStages); sz /= 2 {
		bytes += int64(sz) * perfmodel.FieldBytes
	}
	bytes += int64(encoder.RateInv*msgLen) * perfmodel.FieldBytes
	return bytes
}

// SimulateEncoderFromWork models batch encoding from an analytic work
// profile (Table 5 at full scale).
func SimulateEncoderFromWork(spec gpusim.DeviceSpec, costs perfmodel.OpCosts, work []encoder.StageWork, msgLen, batch int, scheme Scheme, overlap, sortRows bool) (*gpusim.Report, error) {
	stages := EncoderStagesFromWork(work, msgLen, costs, sortRows)
	taskBytes := EncoderTaskBytesForLen(msgLen, len(work))
	switch scheme {
	case Pipelined:
		return gpusim.RunPipelined(spec, stages, batch, gpusim.Options{
			Overlap: overlap, TaskBytes: taskBytes,
		})
	case Naive:
		threads := msgLen
		if threads > spec.Cores {
			threads = spec.Cores
		}
		return gpusim.RunNaive(spec, stages, batch, threads, gpusim.Options{
			TaskBytes: taskBytes,
		})
	default:
		return nil, fmt.Errorf("pipeline: unknown scheme %q", scheme)
	}
}

// EncoderTaskBytes is the in-flight footprint of one encoding: the stage
// inputs retained for reassembly plus the growing codeword.
func EncoderTaskBytes(enc *encoder.Encoder) int64 {
	bytes := int64(0)
	for sz := enc.MessageLen(); sz >= enc.MessageLen()>>uint(enc.NumStages()); sz /= 2 {
		bytes += int64(sz) * perfmodel.FieldBytes
	}
	bytes += int64(enc.CodewordLen()) * perfmodel.FieldBytes
	return bytes
}

// Scheme selects the execution strategy being modelled.
type Scheme string

// Available schemes.
const (
	Pipelined Scheme = "pipelined" // stage-per-kernel (this paper)
	Naive     Scheme = "naive"     // one kernel per task (Simon/Icicle-style)
)

// SimulateMerkle models batch Merkle-tree generation (Table 3 rows).
func SimulateMerkle(spec gpusim.DeviceSpec, costs perfmodel.OpCosts, numBlocks, batch int, scheme Scheme, overlap bool) (*gpusim.Report, error) {
	stages, err := MerkleStages(numBlocks, costs)
	if err != nil {
		return nil, err
	}
	switch scheme {
	case Pipelined:
		return gpusim.RunPipelined(spec, stages, batch, gpusim.Options{
			Overlap:   overlap,
			TaskBytes: MerkleTaskBytes(numBlocks),
		})
	case Naive:
		threads := numBlocks
		if threads > spec.Cores {
			threads = spec.Cores
		}
		return gpusim.RunNaive(spec, stages, batch, threads, gpusim.Options{
			TaskBytes:    int64(numBlocks) * perfmodel.HashBlockBytes,
			PreloadTasks: batch,
		})
	default:
		return nil, fmt.Errorf("pipeline: unknown scheme %q", scheme)
	}
}

// SimulateSumcheck models batch sum-check proving (Table 4 rows).
func SimulateSumcheck(spec gpusim.DeviceSpec, costs perfmodel.OpCosts, nVars, batch int, scheme Scheme, overlap bool) (*gpusim.Report, error) {
	stages, err := SumcheckStages(nVars, costs)
	if err != nil {
		return nil, err
	}
	switch scheme {
	case Pipelined:
		return gpusim.RunPipelined(spec, stages, batch, gpusim.Options{
			Overlap:   overlap,
			TaskBytes: SumcheckTaskBytes(nVars),
		})
	case Naive:
		threads := 1 << (nVars - 1)
		if threads > spec.Cores {
			threads = spec.Cores
		}
		return gpusim.RunNaive(spec, stages, batch, threads, gpusim.Options{
			TaskBytes:    int64(1<<nVars) * perfmodel.FieldBytes,
			PreloadTasks: batch,
		})
	default:
		return nil, fmt.Errorf("pipeline: unknown scheme %q", scheme)
	}
}

// SimulateEncoder models batch linear-time encoding (Table 5 rows). The
// naive scheme is "Ours-np": the same kernels executed one task at a time.
func SimulateEncoder(spec gpusim.DeviceSpec, costs perfmodel.OpCosts, enc *encoder.Encoder, batch int, scheme Scheme, overlap, sortRows bool) (*gpusim.Report, error) {
	stages := EncoderStages(enc, costs, sortRows)
	switch scheme {
	case Pipelined:
		return gpusim.RunPipelined(spec, stages, batch, gpusim.Options{
			Overlap:   overlap,
			TaskBytes: EncoderTaskBytes(enc),
		})
	case Naive:
		threads := enc.MessageLen()
		if threads > spec.Cores {
			threads = spec.Cores
		}
		return gpusim.RunNaive(spec, stages, batch, threads, gpusim.Options{
			TaskBytes: EncoderTaskBytes(enc),
		})
	default:
		return nil, fmt.Errorf("pipeline: unknown scheme %q", scheme)
	}
}

// sortedCopy is kept for tests that need an independently sorted view.
func sortedCopy(lens []byte) []byte {
	out := append([]byte(nil), lens...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
