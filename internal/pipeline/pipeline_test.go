package pipeline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"batchzk/internal/encoder"
	"batchzk/internal/field"
	"batchzk/internal/merkle"
	"batchzk/internal/perfmodel"
	"batchzk/internal/poly"
	"batchzk/internal/sumcheck"
)

func TestBatchMerkleMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 16, 64} {
		var tasks [][]merkle.Block
		for i := 0; i < 7; i++ {
			blocks := make([]merkle.Block, n)
			for j := range blocks {
				r.Read(blocks[j][:])
			}
			tasks = append(tasks, blocks)
		}
		roots, err := BatchMerkle(tasks)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, tk := range tasks {
			tree, err := merkle.Build(tk)
			if err != nil {
				t.Fatal(err)
			}
			if roots[i] != tree.Root() {
				t.Fatalf("n=%d task=%d: pipelined root differs from merkle.Build", n, i)
			}
		}
	}
	if _, err := BatchMerkle(nil); err == nil {
		t.Fatal("accepted empty batch")
	}
	if _, err := BatchMerkle([][]merkle.Block{make([]merkle.Block, 3)}); err == nil {
		t.Fatal("accepted non-power-of-two blocks")
	}
	if _, err := BatchMerkle([][]merkle.Block{make([]merkle.Block, 4), make([]merkle.Block, 8)}); err == nil {
		t.Fatal("accepted ragged batch")
	}
}

func TestBatchSumcheckMatchesSequential(t *testing.T) {
	nVars := 6
	batch := 9
	tables := make([][]field.Element, batch)
	challenges := make([][]field.Element, batch)
	for i := range tables {
		tables[i] = field.RandVector(1 << nVars)
		challenges[i] = field.RandVector(nVars)
	}
	results, err := BatchSumcheck(tables, func(task, round int, _, _ field.Element) field.Element {
		return challenges[task][round]
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tables {
		m, err := poly.NewMultilinear(append([]field.Element{}, tables[i]...))
		if err != nil {
			t.Fatal(err)
		}
		want, wantFinal, err := sumcheck.ProveWithChallenges(m, challenges[i])
		if err != nil {
			t.Fatal(err)
		}
		got := results[i]
		if len(got.Proof.Rounds) != len(want.Rounds) {
			t.Fatalf("task %d round count", i)
		}
		for r := range want.Rounds {
			if got.Proof.Rounds[r] != want.Rounds[r] {
				t.Fatalf("task %d round %d differs from sequential prover", i, r)
			}
		}
		if !got.Final.Equal(&wantFinal) {
			t.Fatalf("task %d final differs", i)
		}
	}
	if _, err := BatchSumcheck(nil, nil); err == nil {
		t.Fatal("accepted empty batch")
	}
	if _, err := BatchSumcheck([][]field.Element{make([]field.Element, 3)}, nil); err == nil {
		t.Fatal("accepted non-power-of-two table")
	}
}

func TestBatchEncodeMatchesSequential(t *testing.T) {
	enc, err := encoder.New(128, encoder.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([][]field.Element, 6)
	for i := range msgs {
		msgs[i] = field.RandVector(128)
	}
	got, err := BatchEncode(enc, msgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msgs {
		want, err := enc.Encode(msgs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !field.VectorEqual(got[i], want) {
			t.Fatalf("task %d: pipelined codeword differs from Encode", i)
		}
	}
	// Base-size messages (zero matrix stages).
	base, _ := encoder.New(16, encoder.DefaultParams())
	bm := [][]field.Element{field.RandVector(16), field.RandVector(16)}
	bGot, err := BatchEncode(base, bm)
	if err != nil {
		t.Fatal(err)
	}
	bWant, _ := base.Encode(bm[0])
	if !field.VectorEqual(bGot[0], bWant) {
		t.Fatal("base-size pipelined codeword differs")
	}
	if _, err := BatchEncode(enc, nil); err == nil {
		t.Fatal("accepted empty batch")
	}
	if _, err := BatchEncode(enc, [][]field.Element{field.RandVector(64)}); err == nil {
		t.Fatal("accepted wrong message length")
	}
}

func TestDoubleBufferDiscipline(t *testing.T) {
	db := NewDoubleBuffer[int](4)
	// Correct usage: read one, write the other, advance.
	for p := 0; p < 6; p++ {
		r := db.ReadBuf()
		w := db.WriteBuf()
		if &r[0] == &w[0] {
			t.Fatal("read and write buffers alias")
		}
		w[0] = p
		if err := db.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	// The value written last period is readable this period.
	w := db.WriteBuf()
	w[1] = 42
	if err := db.Advance(); err != nil {
		t.Fatal(err)
	}
	if got := db.ReadBuf()[1]; got != 42 {
		t.Fatalf("read %d, want 42", got)
	}
}

func TestDoubleBufferViolation(t *testing.T) {
	db := NewDoubleBuffer[int](2)
	_ = db.ReadBuf()
	_ = db.WriteBuf()
	_ = db.ReadBuf()
	// Force a violation: grab the write buffer again after advancing the
	// period manually through misuse — simulate by reading and writing the
	// same buffer via two period calls without Advance.
	db.period++       // misuse: period changed under the hood
	_ = db.ReadBuf()  // now reads the buffer written above
	_ = db.WriteBuf() // and writes the one read above
	db.period--
	if err := db.Advance(); err == nil {
		t.Fatal("missed read/write overlap")
	}
}

func TestDoubleBufferPropertyAlternation(t *testing.T) {
	f := func(steps uint8) bool {
		db := NewDoubleBuffer[byte](1)
		var lastWrite *byte
		for s := 0; s < int(steps%32)+2; s++ {
			r := db.ReadBuf()
			w := db.WriteBuf()
			if &r[0] == &w[0] {
				return false
			}
			// This period's read buffer must be last period's write buffer.
			if lastWrite != nil && &r[0] != lastWrite {
				return false
			}
			lastWrite = &w[0]
			if err := db.Advance(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWarpImbalance(t *testing.T) {
	// Uniform rows: no imbalance regardless of sorting.
	uniform := make([]byte, 64)
	for i := range uniform {
		uniform[i] = 10
	}
	if got := WarpImbalance(uniform, false); got != 1 {
		t.Fatalf("uniform imbalance = %v", got)
	}
	// Alternating 1/21 rows: unsorted warps all pay max=21 → factor
	// 32·21·2 / (22·32) = 21/11 ≈ 1.9; sorted groups separate them.
	skewed := make([]byte, 64)
	for i := range skewed {
		if i%2 == 0 {
			skewed[i] = 1
		} else {
			skewed[i] = 21
		}
	}
	unsorted := WarpImbalance(skewed, false)
	sorted := WarpImbalance(skewed, true)
	if unsorted <= sorted {
		t.Fatalf("sorting should help: unsorted=%.3f sorted=%.3f", unsorted, sorted)
	}
	if sorted != 1 {
		t.Fatalf("perfectly separable rows should sort to 1, got %.3f", sorted)
	}
	if WarpImbalance(nil, true) != 1 {
		t.Fatal("empty rows should be neutral")
	}
	if WarpImbalance(make([]byte, 8), false) != 1 {
		t.Fatal("all-zero rows should be neutral")
	}
	// sortedCopy helper agrees with the bucket sort's grouping cost.
	sc := sortedCopy(skewed)
	if WarpImbalance(sc, false) != sorted {
		t.Fatal("sortedCopy and bucket sort disagree")
	}
}

func TestStageBuilders(t *testing.T) {
	costs := perfmodel.GPUCosts()
	ms, err := MerkleStages(64, costs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 7 { // leaves + 6 layers
		t.Fatalf("merkle stages = %d", len(ms))
	}
	work := 0.0
	for _, s := range ms {
		work += s.WorkOps
	}
	if work != 127 { // 2·64 − 1 compressions
		t.Fatalf("total merkle work = %v", work)
	}
	if _, err := MerkleStages(3, costs); err == nil {
		t.Fatal("accepted non-power-of-two")
	}

	ss, err := SumcheckStages(8, costs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 8 {
		t.Fatalf("sumcheck stages = %d", len(ss))
	}
	if ss[0].HostBytesIn != 256*perfmodel.FieldBytes {
		t.Fatal("sumcheck dynamic loading missing")
	}
	if _, err := SumcheckStages(0, costs); err == nil {
		t.Fatal("accepted zero variables")
	}

	enc, _ := encoder.New(128, encoder.DefaultParams())
	es := EncoderStages(enc, costs, true)
	if len(es) != 2*enc.NumStages()+1 {
		t.Fatalf("encoder stages = %d", len(es))
	}
	// Total matrix work must equal the encoder's own count.
	mads := 0.0
	for _, s := range es {
		if s.Name != "encoder/base" {
			mads += s.WorkOps
		}
	}
	if int(mads) != enc.WorkNonZeros() {
		t.Fatalf("encoder stage work %v != WorkNonZeros %d", mads, enc.WorkNonZeros())
	}
}

func TestSimulateModulesShapes(t *testing.T) {
	spec := perfmodel.RTX3090Ti()
	costs := perfmodel.GPUCosts()
	batch := 64

	// Merkle: pipelined throughput beats naive; latency is worse (Table 6).
	pm, err := SimulateMerkle(spec, costs, 1<<14, batch, Pipelined, true)
	if err != nil {
		t.Fatal(err)
	}
	nm, err := SimulateMerkle(spec, costs, 1<<14, batch, Naive, false)
	if err != nil {
		t.Fatal(err)
	}
	if pm.ThroughputPerMs() <= nm.ThroughputPerMs() {
		t.Fatalf("merkle: pipelined %.3f ≤ naive %.3f trees/ms", pm.ThroughputPerMs(), nm.ThroughputPerMs())
	}
	if pm.LatencyNs <= nm.LatencyNs {
		t.Fatalf("merkle: pipelined latency should be higher (Table 6)")
	}
	// Memory: pipelined in-flight footprint below the naive batch load.
	if pm.PeakDeviceBytes >= nm.PeakDeviceBytes {
		t.Fatalf("merkle memory: pipelined %d ≥ naive %d", pm.PeakDeviceBytes, nm.PeakDeviceBytes)
	}

	// Sum-check.
	ps, err := SimulateSumcheck(spec, costs, 14, batch, Pipelined, true)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := SimulateSumcheck(spec, costs, 14, batch, Naive, false)
	if err != nil {
		t.Fatal(err)
	}
	if ps.ThroughputPerMs() <= ns.ThroughputPerMs() {
		t.Fatalf("sumcheck: pipelined %.3f ≤ naive %.3f proofs/ms", ps.ThroughputPerMs(), ns.ThroughputPerMs())
	}

	// Encoder: pipelined beats non-pipelined; sorted rows beat unsorted.
	enc, _ := encoder.New(1<<12, encoder.DefaultParams())
	pe, err := SimulateEncoder(spec, costs, enc, batch, Pipelined, true, true)
	if err != nil {
		t.Fatal(err)
	}
	ne, err := SimulateEncoder(spec, costs, enc, batch, Naive, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if pe.ThroughputPerMs() <= ne.ThroughputPerMs() {
		t.Fatalf("encoder: pipelined %.3f ≤ np %.3f codes/ms", pe.ThroughputPerMs(), ne.ThroughputPerMs())
	}
	un, err := SimulateEncoder(spec, costs, enc, batch, Pipelined, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if un.ThroughputPerMs() > pe.ThroughputPerMs() {
		t.Fatalf("encoder: unsorted rows should not beat sorted")
	}

	// Unknown scheme errors.
	if _, err := SimulateMerkle(spec, costs, 1<<10, 1, Scheme("x"), false); err == nil {
		t.Fatal("unknown scheme accepted (merkle)")
	}
	if _, err := SimulateSumcheck(spec, costs, 10, 1, Scheme("x"), false); err == nil {
		t.Fatal("unknown scheme accepted (sumcheck)")
	}
	if _, err := SimulateEncoder(spec, costs, enc, 1, Scheme("x"), false, true); err == nil {
		t.Fatal("unknown scheme accepted (encoder)")
	}
}

func TestSpeedupGrowsForSmallerSizes(t *testing.T) {
	// Table 3's trend on the real module model.
	spec := perfmodel.GH200()
	costs := perfmodel.GPUCosts()
	speedup := func(logN int) float64 {
		p, err := SimulateMerkle(spec, costs, 1<<logN, 32, Pipelined, true)
		if err != nil {
			t.Fatal(err)
		}
		n, err := SimulateMerkle(spec, costs, 1<<logN, 32, Naive, false)
		if err != nil {
			t.Fatal(err)
		}
		return p.ThroughputPerMs() / n.ThroughputPerMs()
	}
	if s14, s20 := speedup(14), speedup(20); s14 <= s20 {
		t.Fatalf("speedup should grow as trees shrink: 2^14→%.2f 2^20→%.2f", s14, s20)
	}
}
