// Package pipeline implements §3 of the BatchZK paper: the pipelined GPU
// modules for Merkle trees, sum-check proofs, and linear-time codes.
//
// Each module exists in two coupled forms:
//
//   - a *functional* batch executor that really computes the batch in
//     pipeline order — stage-per-kernel, one task advancing per cycle,
//     sum-check rounds alternating between two recyclable buffers — and is
//     tested to produce bit-identical results to the direct (sequential)
//     implementations in internal/merkle, internal/sumcheck and
//     internal/encoder;
//
//   - a *performance model* that feeds the same modules' real work counts
//     (hash compressions per layer, multiply-adds per sparse-matrix level,
//     bytes touched per round) into the gpusim engine, yielding the
//     throughput/latency/utilization/memory numbers of Tables 3–6, 9, 10
//     and Figure 9.
package pipeline

import "fmt"

// DoubleBuffer realizes the sum-check memory discipline of §3.2 (Figure
// 5): two recyclable buffers where odd periods read from the lower buffer
// and write to the upper, and even periods do the reverse, so a read and a
// write never target the same buffer in one period.
type DoubleBuffer[T any] struct {
	lower, upper []T
	period       int
	// access log of the current period, for the disjointness invariant
	readLower, readUpper   bool
	writeLower, writeUpper bool
}

// NewDoubleBuffer allocates both buffers with the given capacity.
func NewDoubleBuffer[T any](capacity int) *DoubleBuffer[T] {
	return &DoubleBuffer[T]{
		lower: make([]T, capacity),
		upper: make([]T, capacity),
	}
}

// Period returns the current period number (starting at 0 — an "odd time
// period" in the paper's figure, reading lower / writing upper).
func (d *DoubleBuffer[T]) Period() int { return d.period }

// ReadBuf returns the buffer to read during the current period.
func (d *DoubleBuffer[T]) ReadBuf() []T {
	if d.period%2 == 0 {
		d.readLower = true
		return d.lower
	}
	d.readUpper = true
	return d.upper
}

// WriteBuf returns the buffer to write during the current period.
func (d *DoubleBuffer[T]) WriteBuf() []T {
	if d.period%2 == 0 {
		d.writeUpper = true
		return d.upper
	}
	d.writeLower = true
	return d.lower
}

// Advance ends the period, checking the no-race invariant: within one
// period, no buffer may be both read and written.
func (d *DoubleBuffer[T]) Advance() error {
	if d.readLower && d.writeLower {
		return fmt.Errorf("pipeline: lower buffer read and written in period %d", d.period)
	}
	if d.readUpper && d.writeUpper {
		return fmt.Errorf("pipeline: upper buffer read and written in period %d", d.period)
	}
	d.readLower, d.readUpper, d.writeLower, d.writeUpper = false, false, false, false
	d.period++
	return nil
}
