// Package protocol implements the single-proof zero-knowledge argument
// whose batch generation BatchZK accelerates: an Orion/Brakedown-family
// protocol built from exactly the three modules of the paper's Table 1 —
// linear-time encoder + Merkle tree (the polynomial commitment) and the
// sum-check protocol (the circuit-satisfaction argument). No NTT, no MSM.
//
// For a circuit C with public inputs x, secret inputs w and outputs y, the
// prover shows knowledge of a full wire assignment W satisfying every gate
// and consistent with (x, y):
//
//  1. Commit. The padded wire vector is committed with the pcs package
//     (encode rows → Merkle-hash columns), yielding root R — the
//     encoder/Merkle stage of the paper's Figure 7 pipeline.
//  2. Hadamard check. Gate semantics are flattened to L ∘ R = O over the
//     gate hypercube (add/sub gates take right-operand 1). A random τ
//     reduces this to the claim Σ_b eq(τ,b)·L(b)·R(b) = Õ(τ), settled by
//     a degree-3 sum-check.
//  3. Linear check. The sum-check leaves claims L(ρ), R(ρ), Õ(τ); together
//     with the public-input/output wire claims they are all inner products
//     ⟨v, W⟩ with publicly computable vectors v. A random combination
//     batches them into one degree-2 product sum-check.
//  4. Opening. The final sum-check point requires one evaluation of W,
//     proven through the polynomial commitment.
//
// The verifier runs in O(|C|) time (it evaluates the public combination
// vector's MLE itself), matching the paper's protocol family, whose proofs
// are "relatively larger and reach several MB" with linear-time verifiers.
package protocol

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"batchzk/internal/circuit"
	"batchzk/internal/field"
	"batchzk/internal/pcs"
	"batchzk/internal/poly"
	"batchzk/internal/sumcheck"
	"batchzk/internal/transcript"
)

// Domain is the Fiat–Shamir domain label of the protocol.
const Domain = "batchzk/protocol"

// Params fixes the commitment layout for a circuit.
type Params struct {
	PCS      pcs.Params
	NumWires int // padded wire-vector length (power of two)
	NumGates int // padded gate count (power of two)
	wireVars int
	gateVars int
}

// Setup derives protocol parameters from a circuit.
func Setup(c *circuit.Circuit) (*Params, error) {
	if c.NumWires() == 0 || len(c.Gates) == 0 {
		return nil, fmt.Errorf("protocol: empty circuit")
	}
	nw := nextPow2(c.NumWires())
	if nw < 16 {
		nw = 16 // the PCS needs at least one encoder base row
	}
	ng := nextPow2(len(c.Gates))
	if ng < 2 {
		ng = 2 // at least one sum-check round
	}
	p := &Params{
		PCS:      pcs.NewParams(log2(nw)),
		NumWires: nw,
		NumGates: ng,
		wireVars: log2(nw),
		gateVars: log2(ng),
	}
	return p, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func log2(n int) int { return bits.TrailingZeros(uint(n)) }

// Proof is a complete non-interactive argument.
type Proof struct {
	Commitment pcs.Commitment
	Outputs    []field.Element // claimed circuit outputs

	OTau     field.Element // claimed Õ(τ)
	Hadamard *sumcheck.TripleProof
	LRho     field.Element // claimed L(ρ)
	RRho     field.Element // claimed R(ρ)

	Linear   *sumcheck.ProductProof
	WSigma   field.Element // claimed W(σ)
	PCSProof *pcs.EvalProof
}

// gateVectors derives the padded L, R, O tables from a witness.
func gateVectors(c *circuit.Circuit, w circuit.Assignment, numGates int) (l, r, o []field.Element) {
	l = make([]field.Element, numGates)
	r = make([]field.Element, numGates)
	o = make([]field.Element, numGates)
	one := field.One()
	for g, gate := range c.Gates {
		switch gate.Op {
		case circuit.OpMul:
			l[g] = w[gate.A]
			r[g] = w[gate.B]
		case circuit.OpAdd:
			l[g].Add(&w[gate.A], &w[gate.B])
			r[g] = one
		case circuit.OpSub:
			l[g].Sub(&w[gate.A], &w[gate.B])
			r[g] = one
		}
		o[g] = w[gate.Out]
	}
	return l, r, o
}

// publicCombination builds the batched linear-check vector
// V = α0·vL(ρ) + α1·vR(ρ) + α2·vO(τ) + Σ αk·e_{public wires},
// where vL, vR, vO are the transposes of the gate wiring maps applied to
// the eq tables — computable by prover AND verifier in O(|C|).
// It also returns the list of public wire indices in claim order.
func publicCombination(c *circuit.Circuit, p *Params, eqRho, eqTau, alphas []field.Element) ([]field.Element, []int) {
	v := make([]field.Element, p.NumWires)
	var t field.Element
	for g, gate := range c.Gates {
		switch gate.Op {
		case circuit.OpMul:
			// vL[A] += α0·eqρ[g]; vR[B] += α1·eqρ[g]
			t.Mul(&alphas[0], &eqRho[g])
			v[gate.A].Add(&v[gate.A], &t)
			t.Mul(&alphas[1], &eqRho[g])
			v[gate.B].Add(&v[gate.B], &t)
		case circuit.OpAdd:
			t.Mul(&alphas[0], &eqRho[g])
			v[gate.A].Add(&v[gate.A], &t)
			v[gate.B].Add(&v[gate.B], &t)
			t.Mul(&alphas[1], &eqRho[g])
			v[0].Add(&v[0], &t)
		case circuit.OpSub:
			t.Mul(&alphas[0], &eqRho[g])
			v[gate.A].Add(&v[gate.A], &t)
			v[gate.B].Sub(&v[gate.B], &t)
			t.Mul(&alphas[1], &eqRho[g])
			v[0].Add(&v[0], &t)
		}
		// vO[Out] += α2·eqτ[g]
		t.Mul(&alphas[2], &eqTau[g])
		v[gate.Out].Add(&v[gate.Out], &t)
	}
	// Public wires: the constant-one wire, public inputs, constants, and
	// output wires, each pinned with its own α.
	wires := publicWires(c)
	for k, wi := range wires {
		v[wi].Add(&v[wi], &alphas[3+k])
	}
	return v, wires
}

// publicWires lists the wires whose values the verifier pins: wire 0,
// public inputs, declared constants, circuit outputs, and the declared
// zero wires (gadget constraints).
func publicWires(c *circuit.Circuit) []int {
	wires := []int{0}
	for i := 0; i < c.NumPublic; i++ {
		wires = append(wires, 1+i)
	}
	for _, cw := range c.ConstWires {
		wires = append(wires, int(cw))
	}
	for _, o := range c.Outputs {
		wires = append(wires, int(o))
	}
	for _, z := range c.ZeroWires {
		wires = append(wires, int(z))
	}
	return wires
}

// publicWireValues returns the expected values of publicWires given the
// public inputs and claimed outputs.
func publicWireValues(c *circuit.Circuit, public, outputs []field.Element) []field.Element {
	vals := []field.Element{field.One()}
	vals = append(vals, public...)
	vals = append(vals, c.Constants...)
	vals = append(vals, outputs...)
	vals = append(vals, make([]field.Element, len(c.ZeroWires))...)
	return vals
}

// Prove evaluates the circuit on (public, secret) and produces a proof of
// correct execution. The returned proof carries the circuit outputs.
func Prove(c *circuit.Circuit, p *Params, public, secret []field.Element) (*Proof, error) {
	w, err := c.Evaluate(public, secret)
	if err != nil {
		return nil, err
	}
	return ProveWitness(c, p, w)
}

// ProveWitness proves a precomputed witness (callers that already ran the
// function, e.g. the ML engine of §5, reuse their wire values). It runs
// the four pipeline stages back to back; the batch system in internal/core
// streams many proofs through the same stages concurrently.
func ProveWitness(c *circuit.Circuit, p *Params, w circuit.Assignment) (*Proof, error) {
	f, err := StartProof(c, p, w)
	if err != nil {
		return nil, err
	}
	if err := f.RunHadamard(); err != nil {
		return nil, err
	}
	if err := f.RunLinear(); err != nil {
		return nil, err
	}
	return f.Finish()
}

// InFlight is a proof under construction, moving through the prover's
// pipeline stages: StartProof (encode + Merkle commit) → RunHadamard
// (gate-consistency sum-check) → RunLinear (batched linear sum-check) →
// Finish (polynomial-commitment opening). Each stage matches one module
// family of the paper's Figure 7 pipeline.
type InFlight struct {
	c      *circuit.Circuit
	p      *Params
	w      circuit.Assignment
	padded []field.Element
	st     *pcs.ProverState // buffered commitment (nil in streaming mode)
	ss     *pcs.StreamState // streaming commitment (nil in buffered mode)
	tr     *transcript.Transcript
	proof  *Proof

	tau, rho, sigma []field.Element
}

// StartProof runs the commitment stage: the padded wire vector is encoded
// row by row (linear-time encoder) and its columns Merkle-hashed.
func StartProof(c *circuit.Circuit, p *Params, w circuit.Assignment) (*InFlight, error) {
	if len(w) != c.NumWires() {
		return nil, fmt.Errorf("protocol: witness length %d, want %d", len(w), c.NumWires())
	}
	padded := make([]field.Element, p.NumWires)
	copy(padded, w)
	st, err := pcs.Commit(padded, p.PCS)
	if err != nil {
		return nil, err
	}
	f := &InFlight{
		c: c, p: p, w: w, padded: padded, st: st,
		tr:    transcript.New(Domain),
		proof: &Proof{Commitment: st.Commitment()},
	}
	f.proof.Outputs, err = c.OutputValues(w)
	if err != nil {
		return nil, err
	}
	f.tr.AppendDigest("commit", f.proof.Commitment.Root)
	f.tr.AppendElements("outputs", f.proof.Outputs)
	return f, nil
}

// RunHadamard runs the gate-consistency stage: the claim L ∘ R = O over
// the gate hypercube is reduced at a random τ and settled by a degree-3
// sum-check.
func (f *InFlight) RunHadamard() error {
	l, r, o := gateVectors(f.c, f.w, f.p.NumGates)
	f.tau = f.tr.ChallengeElements("tau", f.p.gateVars)
	oPoly, err := poly.NewMultilinear(o)
	if err != nil {
		return err
	}
	f.proof.OTau, err = oPoly.Evaluate(f.tau)
	if err != nil {
		return err
	}
	f.tr.AppendElement("o_tau", &f.proof.OTau)

	eqTauPoly, err := poly.NewMultilinear(poly.EqTable(f.tau))
	if err != nil {
		return err
	}
	lPoly, _ := poly.NewMultilinear(l)
	rPoly, _ := poly.NewMultilinear(r)
	had, rho, hadClaim, finals, err := sumcheck.ProveTriple(eqTauPoly, lPoly, rPoly, f.tr)
	if err != nil {
		return err
	}
	if !hadClaim.Equal(&f.proof.OTau) {
		return fmt.Errorf("protocol: Σ eq·L·R != Õ(τ); witness does not satisfy the circuit")
	}
	f.rho = rho
	f.proof.Hadamard = had
	f.proof.LRho = finals[1]
	f.proof.RRho = finals[2]
	f.tr.AppendElement("l_rho", &f.proof.LRho)
	f.tr.AppendElement("r_rho", &f.proof.RRho)
	// The raw witness was the last thing that needed unpadded wire values;
	// the remaining stages work off the padded copy. Dropping it here lets
	// a deep pipeline reclaim one witness per in-flight proof two stages
	// early.
	f.w = nil
	return nil
}

// RunLinear runs the batched linear-check stage: the sum-check's leftover
// claims and the public-wire claims become one product sum-check.
func (f *InFlight) RunLinear() error {
	wires := publicWires(f.c)
	alphas := f.tr.ChallengeElements("alpha", 3+len(wires))
	eqRho := poly.EqTable(f.rho)
	eqTau := poly.EqTable(f.tau)
	v, _ := publicCombination(f.c, f.p, eqRho, eqTau, alphas)
	vPoly, err := poly.NewMultilinear(v)
	if err != nil {
		return err
	}
	wPoly, err := poly.NewMultilinear(f.padded)
	if err != nil {
		return err
	}
	lin, sigma, _, linFinals, err := sumcheck.ProveProduct(vPoly, wPoly, f.tr)
	if err != nil {
		return err
	}
	f.sigma = sigma
	f.proof.Linear = lin
	f.proof.WSigma = linFinals[1]
	f.tr.AppendElement("w_sigma", &f.proof.WSigma)
	return nil
}

// Finish runs the opening stage and assembles the proof. In streaming
// mode the opening re-reads rows from the padded witness and re-encodes
// the challenged columns instead of consulting a retained matrix. Either
// way the prover state and witness buffers are released on return.
func (f *InFlight) Finish() (*Proof, error) {
	var err error
	if f.ss != nil {
		numCols := f.p.PCS.NumCols
		padded := f.padded
		rowAt := func(r int) []field.Element {
			return padded[r*numCols : (r+1)*numCols]
		}
		f.proof.PCSProof, _, err = f.ss.ProveEval(rowAt, f.sigma, f.tr)
	} else {
		f.proof.PCSProof, _, err = f.st.ProveEval(f.sigma, f.tr)
	}
	if err != nil {
		return nil, err
	}
	f.st, f.ss, f.padded = nil, nil, nil
	return f.proof, nil
}

// ErrReject is returned when a proof fails verification.
var ErrReject = errors.New("protocol: proof rejected")

// VerifyBatch verifies many proofs concurrently (verification of
// independent proofs is embarrassingly parallel, unlike generation, which
// is what the paper pipelines). It returns one error slot per proof.
func VerifyBatch(c *circuit.Circuit, p *Params, publics [][]field.Element, proofs []*Proof) []error {
	errs := make([]error, len(proofs))
	var wg sync.WaitGroup
	for i := range proofs {
		if i >= len(publics) {
			errs[i] = fmt.Errorf("protocol: missing public inputs for proof %d", i)
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = Verify(c, p, publics[i], proofs[i])
		}(i)
	}
	wg.Wait()
	return errs
}

// Verify checks a proof against the circuit and public inputs; the claimed
// outputs are carried in the proof and validated as part of verification.
func Verify(c *circuit.Circuit, p *Params, public []field.Element, proof *Proof) error {
	if proof == nil || proof.Hadamard == nil || proof.Linear == nil || proof.PCSProof == nil {
		return fmt.Errorf("%w: missing components", ErrReject)
	}
	if len(public) != c.NumPublic {
		return fmt.Errorf("protocol: %d public inputs, want %d", len(public), c.NumPublic)
	}
	if len(proof.Outputs) != len(c.Outputs) {
		return fmt.Errorf("%w: %d outputs, want %d", ErrReject, len(proof.Outputs), len(c.Outputs))
	}
	if proof.Commitment.NumRows != p.PCS.NumRows || proof.Commitment.NumCols != p.PCS.NumCols {
		return fmt.Errorf("%w: commitment layout mismatch", ErrReject)
	}
	tr := transcript.New(Domain)
	tr.AppendDigest("commit", proof.Commitment.Root)
	tr.AppendElements("outputs", proof.Outputs)

	// 2. Hadamard sum-check against the claimed Õ(τ).
	tau := tr.ChallengeElements("tau", p.gateVars)
	tr.AppendElement("o_tau", &proof.OTau)
	rho, finalTriple, err := sumcheck.VerifyTriple(proof.OTau, proof.Hadamard, tr)
	if err != nil {
		return fmt.Errorf("%w: hadamard: %v", ErrReject, err)
	}
	tr.AppendElement("l_rho", &proof.LRho)
	tr.AppendElement("r_rho", &proof.RRho)
	// eq(τ, ρ)·L(ρ)·R(ρ) must equal the sum-check's final value.
	eqAt, err := poly.EqEval(tau, rho)
	if err != nil {
		return err
	}
	var prod field.Element
	prod.Mul(&eqAt, &proof.LRho)
	prod.Mul(&prod, &proof.RRho)
	if !prod.Equal(&finalTriple) {
		return fmt.Errorf("%w: hadamard final check", ErrReject)
	}

	// 3. Linear check: batched claim value.
	wires := publicWires(c)
	alphas := tr.ChallengeElements("alpha", 3+len(wires))
	vals := publicWireValues(c, public, proof.Outputs)
	var claim, t field.Element
	t.Mul(&alphas[0], &proof.LRho)
	claim.Add(&claim, &t)
	t.Mul(&alphas[1], &proof.RRho)
	claim.Add(&claim, &t)
	t.Mul(&alphas[2], &proof.OTau)
	claim.Add(&claim, &t)
	for k := range wires {
		t.Mul(&alphas[3+k], &vals[k])
		claim.Add(&claim, &t)
	}
	sigma, finalLin, err := sumcheck.VerifyProduct(claim, proof.Linear, tr)
	if err != nil {
		return fmt.Errorf("%w: linear: %v", ErrReject, err)
	}
	tr.AppendElement("w_sigma", &proof.WSigma)
	// The verifier evaluates Ṽ(σ) itself (O(|C|)) and checks
	// Ṽ(σ)·W(σ) == final.
	eqRho := poly.EqTable(rho)
	eqTau := poly.EqTable(tau)
	v, _ := publicCombination(c, p, eqRho, eqTau, alphas)
	vPoly, err := poly.NewMultilinear(v)
	if err != nil {
		return err
	}
	vSigma, err := vPoly.Evaluate(sigma)
	if err != nil {
		return err
	}
	prod.Mul(&vSigma, &proof.WSigma)
	if !prod.Equal(&finalLin) {
		return fmt.Errorf("%w: linear final check", ErrReject)
	}

	// 4. PCS opening of W(σ).
	if err := pcs.VerifyEval(proof.Commitment, sigma, proof.WSigma, proof.PCSProof, p.PCS, tr); err != nil {
		return fmt.Errorf("%w: opening: %v", ErrReject, err)
	}
	return nil
}
