package protocol

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"batchzk/internal/field"
	"batchzk/internal/merkle"
	"batchzk/internal/pcs"
	"batchzk/internal/sha2"
	"batchzk/internal/sumcheck"
)

// Binary proof encoding. The format is versioned and length-prefixed:
//
//	magic "BZK1" | commitment | outputs | o_tau | hadamard rounds |
//	l_rho | r_rho | linear rounds | w_sigma | pcs proof
//
// All integers are little-endian uint32 (lengths) and field elements are
// 32-byte canonical big-endian. The dominant contribution is the opened
// columns of the polynomial commitment — the proofs of this protocol
// family "reach several MB" (paper §2.1), which TestProofSize verifies.

var proofMagic = [4]byte{'B', 'Z', 'K', '1'}

// maxLen bounds every length field to keep a corrupt stream from
// triggering huge allocations.
const maxLen = 1 << 28

type encoder struct {
	w   io.Writer
	err error
}

func (e *encoder) u32(v int) {
	if e.err != nil {
		return
	}
	if v < 0 || v > maxLen {
		e.err = fmt.Errorf("protocol: length %d out of range", v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(v))
	_, e.err = e.w.Write(b[:])
}

func (e *encoder) elem(x *field.Element) {
	if e.err != nil {
		return
	}
	b := x.ToBytes()
	_, e.err = e.w.Write(b[:])
}

func (e *encoder) elems(xs []field.Element) {
	e.u32(len(xs))
	for i := range xs {
		e.elem(&xs[i])
	}
}

func (e *encoder) digest(d sha2.Digest) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(d[:])
}

type decoder struct {
	r   io.Reader
	err error
}

func (d *decoder) u32() int {
	if d.err != nil {
		return 0
	}
	var b [4]byte
	if _, err := io.ReadFull(d.r, b[:]); err != nil {
		d.err = fmt.Errorf("protocol: truncated proof: %w", err)
		return 0
	}
	v := binary.LittleEndian.Uint32(b[:])
	if v > maxLen {
		d.err = fmt.Errorf("protocol: length %d out of range", v)
		return 0
	}
	return int(v)
}

func (d *decoder) elem(x *field.Element) {
	if d.err != nil {
		return
	}
	var b [field.Bytes]byte
	if _, err := io.ReadFull(d.r, b[:]); err != nil {
		d.err = fmt.Errorf("protocol: truncated proof: %w", err)
		return
	}
	if err := x.SetBytes(b); err != nil {
		d.err = err
	}
}

func (d *decoder) elems() []field.Element {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	out := make([]field.Element, n)
	for i := range out {
		d.elem(&out[i])
	}
	return out
}

func (d *decoder) digest() sha2.Digest {
	var out sha2.Digest
	if d.err != nil {
		return out
	}
	if _, err := io.ReadFull(d.r, out[:]); err != nil {
		d.err = fmt.Errorf("protocol: truncated proof: %w", err)
	}
	return out
}

// WriteTo serializes the proof.
func (p *Proof) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	e := &encoder{w: cw}
	if _, err := cw.Write(proofMagic[:]); err != nil {
		return cw.n, err
	}
	e.digest(p.Commitment.Root)
	e.u32(p.Commitment.NumRows)
	e.u32(p.Commitment.NumCols)
	e.elems(p.Outputs)
	e.elem(&p.OTau)
	if p.Hadamard == nil || p.Linear == nil || p.PCSProof == nil {
		return cw.n, fmt.Errorf("protocol: cannot serialize incomplete proof")
	}
	e.u32(len(p.Hadamard.Rounds))
	for i := range p.Hadamard.Rounds {
		for j := range p.Hadamard.Rounds[i].At {
			e.elem(&p.Hadamard.Rounds[i].At[j])
		}
	}
	e.elem(&p.LRho)
	e.elem(&p.RRho)
	e.u32(len(p.Linear.Rounds))
	for i := range p.Linear.Rounds {
		rd := &p.Linear.Rounds[i]
		e.elem(&rd.At0)
		e.elem(&rd.At1)
		e.elem(&rd.At2)
	}
	e.elem(&p.WSigma)
	e.elems(p.PCSProof.TestRow)
	e.elems(p.PCSProof.CombinedRow)
	e.u32(len(p.PCSProof.Columns))
	for i := range p.PCSProof.Columns {
		col := &p.PCSProof.Columns[i]
		e.u32(col.Index)
		e.elems(col.Values)
		if col.Proof == nil {
			return cw.n, fmt.Errorf("protocol: column %d missing Merkle proof", i)
		}
		e.u32(col.Proof.Index)
		e.digest(col.Proof.Leaf)
		e.u32(len(col.Proof.Siblings))
		for _, s := range col.Proof.Siblings {
			e.digest(s)
		}
	}
	return cw.n, e.err
}

// ReadFrom deserializes a proof written by WriteTo.
func (p *Proof) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: r}
	d := &decoder{r: cr}
	var magic [4]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return cr.n, fmt.Errorf("protocol: truncated proof: %w", err)
	}
	if magic != proofMagic {
		return cr.n, fmt.Errorf("protocol: bad magic %q", magic)
	}
	p.Commitment = pcs.Commitment{
		Root:    d.digest(),
		NumRows: d.u32(),
		NumCols: d.u32(),
	}
	p.Outputs = d.elems()
	d.elem(&p.OTau)
	p.Hadamard = &sumcheck.TripleProof{Rounds: make([]sumcheck.TripleRound, d.u32())}
	for i := range p.Hadamard.Rounds {
		for j := range p.Hadamard.Rounds[i].At {
			d.elem(&p.Hadamard.Rounds[i].At[j])
		}
	}
	d.elem(&p.LRho)
	d.elem(&p.RRho)
	p.Linear = &sumcheck.ProductProof{Rounds: make([]sumcheck.ProductRound, d.u32())}
	for i := range p.Linear.Rounds {
		rd := &p.Linear.Rounds[i]
		d.elem(&rd.At0)
		d.elem(&rd.At1)
		d.elem(&rd.At2)
	}
	d.elem(&p.WSigma)
	p.PCSProof = &pcs.EvalProof{
		TestRow:     d.elems(),
		CombinedRow: d.elems(),
	}
	numCols := d.u32()
	if d.err != nil {
		return cr.n, d.err
	}
	p.PCSProof.Columns = make([]pcs.OpenedColumn, numCols)
	for i := range p.PCSProof.Columns {
		col := &p.PCSProof.Columns[i]
		col.Index = d.u32()
		col.Values = d.elems()
		mp := &merkle.Proof{Index: d.u32(), Leaf: d.digest()}
		nSib := d.u32()
		if d.err != nil {
			return cr.n, d.err
		}
		mp.Siblings = make([]sha2.Digest, nSib)
		for s := range mp.Siblings {
			mp.Siblings[s] = d.digest()
		}
		col.Proof = mp
	}
	return cr.n, d.err
}

// MarshalBinary serializes the proof to a byte slice.
func (p *Proof) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary parses a proof serialized by MarshalBinary, rejecting
// trailing garbage.
func (p *Proof) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	if _, err := p.ReadFrom(r); err != nil {
		return err
	}
	if r.Len() != 0 {
		return fmt.Errorf("protocol: %d trailing bytes after proof", r.Len())
	}
	return nil
}

// Size returns the serialized proof size in bytes.
func (p *Proof) Size() (int, error) {
	b, err := p.MarshalBinary()
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
