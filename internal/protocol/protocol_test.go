package protocol

import (
	"errors"
	"testing"

	"batchzk/internal/circuit"
	"batchzk/internal/field"
)

// buildTestCircuit returns y = (x + w)·w − 3 with public x, secret w.
func buildTestCircuit(t testing.TB) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder()
	x := b.PublicInput()
	w := b.SecretInput()
	s := b.Add(x, w)
	m := b.Mul(s, w)
	y := b.Sub(m, b.Const(field.NewElement(3)))
	b.Output(y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestProveVerifyRoundTrip(t *testing.T) {
	c := buildTestCircuit(t)
	p, err := Setup(c)
	if err != nil {
		t.Fatal(err)
	}
	public := []field.Element{field.NewElement(4)}
	secret := []field.Element{field.NewElement(6)}
	proof, err := Prove(c, p, public, secret)
	if err != nil {
		t.Fatal(err)
	}
	// y = (4+6)·6 − 3 = 57.
	if v, _ := proof.Outputs[0].Uint64(); v != 57 {
		t.Fatalf("output = %d", v)
	}
	if err := Verify(c, p, public, proof); err != nil {
		t.Fatal(err)
	}
}

func TestRandomCircuits(t *testing.T) {
	for _, s := range []int{5, 64, 300} {
		c, err := circuit.RandomCircuit(s, 3, 3, int64(s))
		if err != nil {
			t.Fatal(err)
		}
		p, err := Setup(c)
		if err != nil {
			t.Fatal(err)
		}
		public := field.RandVector(3)
		secret := field.RandVector(3)
		proof, err := Prove(c, p, public, secret)
		if err != nil {
			t.Fatalf("S=%d: %v", s, err)
		}
		if err := Verify(c, p, public, proof); err != nil {
			t.Fatalf("S=%d: %v", s, err)
		}
	}
}

func TestRejectWrongPublicInput(t *testing.T) {
	c := buildTestCircuit(t)
	p, _ := Setup(c)
	public := []field.Element{field.NewElement(4)}
	secret := []field.Element{field.NewElement(6)}
	proof, _ := Prove(c, p, public, secret)
	wrong := []field.Element{field.NewElement(5)}
	if err := Verify(c, p, wrong, proof); err == nil {
		t.Fatal("accepted proof under different public input")
	}
	if err := Verify(c, p, nil, proof); err == nil {
		t.Fatal("accepted missing public input")
	}
}

func TestRejectTamperedOutputs(t *testing.T) {
	c := buildTestCircuit(t)
	p, _ := Setup(c)
	public := []field.Element{field.NewElement(4)}
	proof, _ := Prove(c, p, public, []field.Element{field.NewElement(6)})
	proof.Outputs[0] = field.NewElement(58) // off by one
	if err := Verify(c, p, public, proof); err == nil {
		t.Fatal("accepted tampered output")
	}
}

func TestRejectTamperedProofParts(t *testing.T) {
	c, _ := circuit.RandomCircuit(32, 2, 2, 9)
	p, _ := Setup(c)
	public := field.RandVector(2)
	secret := field.RandVector(2)
	base, _ := Prove(c, p, public, secret)
	one := field.One()

	mut := func(f func(*Proof)) error {
		pr, _ := Prove(c, p, public, secret)
		f(pr)
		return Verify(c, p, public, pr)
	}

	if err := mut(func(pr *Proof) { pr.OTau.Add(&pr.OTau, &one) }); err == nil {
		t.Fatal("tampered OTau accepted")
	}
	if err := mut(func(pr *Proof) { pr.LRho.Add(&pr.LRho, &one) }); err == nil {
		t.Fatal("tampered LRho accepted")
	}
	if err := mut(func(pr *Proof) { pr.RRho.Add(&pr.RRho, &one) }); err == nil {
		t.Fatal("tampered RRho accepted")
	}
	if err := mut(func(pr *Proof) { pr.WSigma.Add(&pr.WSigma, &one) }); err == nil {
		t.Fatal("tampered WSigma accepted")
	}
	if err := mut(func(pr *Proof) { pr.Commitment.Root[5] ^= 1 }); err == nil {
		t.Fatal("tampered commitment accepted")
	}
	if err := mut(func(pr *Proof) {
		pr.Hadamard.Rounds[0].At[2].Add(&pr.Hadamard.Rounds[0].At[2], &one)
	}); err == nil {
		t.Fatal("tampered Hadamard round accepted")
	}
	if err := mut(func(pr *Proof) {
		pr.Linear.Rounds[1].At1.Add(&pr.Linear.Rounds[1].At1, &one)
	}); err == nil {
		t.Fatal("tampered linear round accepted")
	}
	if err := mut(func(pr *Proof) { pr.Hadamard = nil }); err == nil {
		t.Fatal("missing Hadamard accepted")
	}
	if err := Verify(c, p, public, nil); !errors.Is(err, ErrReject) {
		t.Fatal("nil proof accepted")
	}
	_ = base
}

func TestSoundnessWrongWitness(t *testing.T) {
	// A witness that does not satisfy the gates must be caught by the
	// prover's own consistency check (Σ eq·L·R != Õ(τ)).
	c := buildTestCircuit(t)
	p, _ := Setup(c)
	w, _ := c.Evaluate([]field.Element{field.NewElement(4)}, []field.Element{field.NewElement(6)})
	w[len(w)-1] = field.NewElement(999) // break the last gate output
	if _, err := ProveWitness(c, p, w); err == nil {
		t.Fatal("prover accepted an unsatisfying witness")
	}
}

func TestProveValidation(t *testing.T) {
	c := buildTestCircuit(t)
	p, _ := Setup(c)
	if _, err := Prove(c, p, nil, []field.Element{field.One()}); err == nil {
		t.Fatal("accepted missing public input")
	}
	if _, err := ProveWitness(c, p, make(circuit.Assignment, 2)); err == nil {
		t.Fatal("accepted short witness")
	}
}

func TestSetupValidation(t *testing.T) {
	if _, err := Setup(&circuit.Circuit{}); err == nil {
		t.Fatal("accepted empty circuit")
	}
}

func TestSingleGateCircuit(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.PublicInput()
	w := b.SecretInput()
	b.Output(b.Mul(x, w))
	c, _ := b.Build()
	p, err := Setup(c)
	if err != nil {
		t.Fatal(err)
	}
	public := []field.Element{field.NewElement(3)}
	secret := []field.Element{field.NewElement(7)}
	proof, err := Prove(c, p, public, secret)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := proof.Outputs[0].Uint64(); v != 21 {
		t.Fatalf("3·7 = %d", v)
	}
	if err := Verify(c, p, public, proof); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyBatch(t *testing.T) {
	c, _ := circuit.RandomCircuit(32, 1, 1, 4)
	p, _ := Setup(c)
	var publics [][]field.Element
	var proofs []*Proof
	for i := 0; i < 4; i++ {
		pub := field.RandVector(1)
		proof, err := Prove(c, p, pub, field.RandVector(1))
		if err != nil {
			t.Fatal(err)
		}
		publics = append(publics, pub)
		proofs = append(proofs, proof)
	}
	// Tamper the third proof.
	proofs[2].Outputs[0] = field.NewElement(77)
	errs := VerifyBatch(c, p, publics, proofs)
	for i, err := range errs {
		if i == 2 && err == nil {
			t.Fatal("tampered proof passed batch verification")
		}
		if i != 2 && err != nil {
			t.Fatalf("proof %d: %v", i, err)
		}
	}
	// Missing publics are reported, not panicked.
	errs = VerifyBatch(c, p, publics[:2], proofs)
	if errs[3] == nil {
		t.Fatal("missing publics unreported")
	}
}

func TestDeterministicProof(t *testing.T) {
	c := buildTestCircuit(t)
	p, _ := Setup(c)
	public := []field.Element{field.NewElement(4)}
	secret := []field.Element{field.NewElement(6)}
	p1, _ := Prove(c, p, public, secret)
	p2, _ := Prove(c, p, public, secret)
	if p1.Commitment.Root != p2.Commitment.Root {
		t.Fatal("commitment differs across identical runs")
	}
	if !p1.OTau.Equal(&p2.OTau) || !p1.WSigma.Equal(&p2.WSigma) {
		t.Fatal("proof scalars differ across identical runs")
	}
}

func BenchmarkProve256Gates(b *testing.B) {
	c, _ := circuit.RandomCircuit(256, 2, 2, 1)
	p, _ := Setup(c)
	public := field.RandVector(2)
	secret := field.RandVector(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Prove(c, p, public, secret); err != nil {
			b.Fatal(err)
		}
	}
}
