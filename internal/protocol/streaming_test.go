package protocol

import (
	"reflect"
	"testing"

	"batchzk/internal/circuit"
	"batchzk/internal/field"
)

// TestStreamingProofBitIdentical pins the streaming commitment path to
// the buffered one: same witness in, byte-identical proof out. Anything
// less and the verifier (or the transcript of a later protocol) would
// notice the prover's memory strategy, which must stay unobservable.
func TestStreamingProofBitIdentical(t *testing.T) {
	for _, s := range []int{5, 64, 300} {
		c, err := circuit.RandomCircuit(s, 3, 3, int64(s))
		if err != nil {
			t.Fatal(err)
		}
		p, err := Setup(c)
		if err != nil {
			t.Fatal(err)
		}
		public := field.RandVector(3)
		secret := field.RandVector(3)
		w, err := c.Evaluate(public, secret)
		if err != nil {
			t.Fatal(err)
		}
		buffered, err := ProveWitness(c, p, append(circuit.Assignment(nil), w...))
		if err != nil {
			t.Fatalf("S=%d buffered: %v", s, err)
		}
		streamed, err := ProveWitnessStreaming(c, p, w)
		if err != nil {
			t.Fatalf("S=%d streamed: %v", s, err)
		}
		if !reflect.DeepEqual(streamed, buffered) {
			t.Fatalf("S=%d: streaming proof differs from buffered proof", s)
		}
		if err := Verify(c, p, public, streamed); err != nil {
			t.Fatalf("S=%d verify: %v", s, err)
		}
	}
}

// TestStreamingReleasesBuffers checks the stage-by-stage hand-back: the
// witness after the Hadamard stage, everything else at Finish.
func TestStreamingReleasesBuffers(t *testing.T) {
	c := buildTestCircuit(t)
	p, _ := Setup(c)
	w, err := c.Evaluate([]field.Element{field.NewElement(4)}, []field.Element{field.NewElement(6)})
	if err != nil {
		t.Fatal(err)
	}
	f, err := StartProofStreaming(c, p, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.RunHadamard(); err != nil {
		t.Fatal(err)
	}
	if f.w != nil {
		t.Fatal("witness retained past the Hadamard stage")
	}
	if err := f.RunLinear(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	if f.padded != nil || f.ss != nil || f.st != nil {
		t.Fatal("prover state retained past Finish")
	}
}

func TestStreamingValidation(t *testing.T) {
	c := buildTestCircuit(t)
	p, _ := Setup(c)
	if _, err := StartProofStreaming(c, p, make(circuit.Assignment, 2)); err == nil {
		t.Fatal("accepted short witness")
	}
}
