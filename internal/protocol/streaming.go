package protocol

import (
	"fmt"

	"batchzk/internal/circuit"
	"batchzk/internal/field"
	"batchzk/internal/pcs"
	"batchzk/internal/transcript"
)

// Streaming commitment mode. The buffered StartProof holds the PCS
// prover state — message rows plus the RateInv× encoded matrix — until
// the opening stage. In streaming mode the commitment is built through
// pcs.StreamingCommitter (per-column incremental hashers, no encoded
// matrix) and the opening re-encodes rows on demand from the padded
// witness, which must survive until Finish anyway for the linear check.
// Per in-flight proof this retires the largest single allocation of the
// pipeline while producing a bit-identical proof; witness buffers are
// additionally released stage by stage (see ReleaseWitness / Finish) so
// a deep pipeline's working set is bounded by what each stage still
// needs, not by everything any stage ever touched.

// StartProofStreaming is StartProof with the commitment built
// out-of-core. The resulting InFlight runs the same RunHadamard /
// RunLinear / Finish stages and yields a bit-identical proof.
func StartProofStreaming(c *circuit.Circuit, p *Params, w circuit.Assignment) (*InFlight, error) {
	if len(w) != c.NumWires() {
		return nil, fmt.Errorf("protocol: witness length %d, want %d", len(w), c.NumWires())
	}
	padded := make([]field.Element, p.NumWires)
	copy(padded, w)
	sc, err := pcs.NewStreamingCommitter(p.PCS, pcs.RetainTree)
	if err != nil {
		return nil, err
	}
	// Row-aligned chunks: the committer encodes and discards each block,
	// so only streamRowBlock codeword rows are ever live.
	if err := sc.AddChunk(padded); err != nil {
		return nil, err
	}
	ss, err := sc.Finish()
	if err != nil {
		return nil, err
	}
	f := &InFlight{
		c: c, p: p, w: w, padded: padded, ss: ss,
		tr:    transcript.New(Domain),
		proof: &Proof{Commitment: ss.Commitment()},
	}
	f.proof.Outputs, err = c.OutputValues(w)
	if err != nil {
		return nil, err
	}
	f.tr.AppendDigest("commit", f.proof.Commitment.Root)
	f.tr.AppendElements("outputs", f.proof.Outputs)
	return f, nil
}

// ProveWitnessStreaming is ProveWitness over the streaming commitment
// path: same stages, same proof bytes, bounded working set.
func ProveWitnessStreaming(c *circuit.Circuit, p *Params, w circuit.Assignment) (*Proof, error) {
	f, err := StartProofStreaming(c, p, w)
	if err != nil {
		return nil, err
	}
	if err := f.RunHadamard(); err != nil {
		return nil, err
	}
	if err := f.RunLinear(); err != nil {
		return nil, err
	}
	return f.Finish()
}
