package protocol

import (
	"bytes"
	"math/rand"
	"testing"

	"batchzk/internal/circuit"
	"batchzk/internal/field"
)

func proofForTest(t testing.TB, gates int) (*circuit.Circuit, *Params, []field.Element, *Proof) {
	t.Helper()
	c, err := circuit.RandomCircuit(gates, 2, 2, int64(gates))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Setup(c)
	if err != nil {
		t.Fatal(err)
	}
	public := field.RandVector(2)
	proof, err := Prove(c, p, public, field.RandVector(2))
	if err != nil {
		t.Fatal(err)
	}
	return c, p, public, proof
}

func TestProofSerializationRoundTrip(t *testing.T) {
	c, p, public, proof := proofForTest(t, 64)
	data, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Proof
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	// The deserialized proof must verify.
	if err := Verify(c, p, public, &back); err != nil {
		t.Fatalf("deserialized proof rejected: %v", err)
	}
	// Re-serialization is stable.
	data2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("serialization is not canonical")
	}
}

func TestProofDeserializationRejections(t *testing.T) {
	_, _, _, proof := proofForTest(t, 32)
	data, _ := proof.MarshalBinary()

	var p Proof
	// Truncations at many offsets.
	for _, cut := range []int{0, 3, 4, 10, len(data) / 2, len(data) - 1} {
		if err := p.UnmarshalBinary(data[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
	// Bad magic.
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if err := p.UnmarshalBinary(bad); err == nil {
		t.Fatal("accepted bad magic")
	}
	// Trailing garbage.
	if err := p.UnmarshalBinary(append(append([]byte{}, data...), 0x00)); err == nil {
		t.Fatal("accepted trailing bytes")
	}
	// Corrupt a length field into a huge value.
	bad = append([]byte{}, data...)
	copy(bad[4+32:], []byte{0xff, 0xff, 0xff, 0x7f})
	if err := p.UnmarshalBinary(bad); err == nil {
		t.Fatal("accepted oversized length")
	}
	// Incomplete proof cannot be serialized.
	incomplete := &Proof{}
	if _, err := incomplete.MarshalBinary(); err == nil {
		t.Fatal("serialized an incomplete proof")
	}
}

func TestCorruptedProofFailsVerification(t *testing.T) {
	c, p, public, proof := proofForTest(t, 64)
	data, _ := proof.MarshalBinary()
	// Flip one byte inside the PCS column region (last third) — the proof
	// must either fail to parse (non-canonical element) or fail to verify.
	bad := append([]byte{}, data...)
	bad[len(bad)*2/3] ^= 0x01
	var back Proof
	if err := back.UnmarshalBinary(bad); err == nil {
		if err := Verify(c, p, public, &back); err == nil {
			t.Fatal("corrupted proof verified")
		}
	}
}

func TestRandomBitFlipsNeverVerify(t *testing.T) {
	// Fuzz-style robustness: flipping any random bit of a serialized
	// proof must result in a parse error or a verification failure —
	// never acceptance.
	c, p, public, proof := proofForTest(t, 48)
	data, _ := proof.MarshalBinary()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		bad := append([]byte{}, data...)
		pos := rng.Intn(len(bad))
		bad[pos] ^= 1 << uint(rng.Intn(8))
		var back Proof
		if err := back.UnmarshalBinary(bad); err != nil {
			continue // parse rejection is fine
		}
		if err := Verify(c, p, public, &back); err == nil {
			t.Fatalf("trial %d: bit flip at byte %d verified", trial, pos)
		}
	}
}

func TestProofSize(t *testing.T) {
	// The paper: "the proof size of the second category is relatively
	// larger and reaches several MB". Check the scaling: opened columns
	// dominate, so size grows with the commitment's row count.
	_, _, _, small := proofForTest(t, 32)
	_, _, _, large := proofForTest(t, 2048)
	ss, err := small.Size()
	if err != nil {
		t.Fatal(err)
	}
	ls, err := large.Size()
	if err != nil {
		t.Fatal(err)
	}
	if ls <= ss {
		t.Fatalf("proof size should grow with scale: %d vs %d", ls, ss)
	}
	t.Logf("proof sizes: 32 gates → %d KiB, 2048 gates → %d KiB", ss/1024, ls/1024)
	// At 2048 gates the proof already exceeds 100 KiB; extrapolating the
	// √S column growth to the paper's 2^20 scale lands in the MB range.
	if ls < 100*1024 {
		t.Fatalf("proof unexpectedly small: %d bytes", ls)
	}
}
