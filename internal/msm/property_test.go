package msm

import (
	"math/big"
	"math/rand"
	"testing"

	"batchzk/internal/curve"
	"batchzk/internal/field"
)

// Differential property tests: Pippenger against the double-and-add
// reference across many sizes (including the window-heuristic
// boundaries) and adversarial scalar distributions — zero, one, r−1,
// sparse bit patterns — that a single fixed-size comparison misses.

// seededScalars derives a reproducible scalar vector mixing uniform
// values with the boundary cases the bucket decomposition must handle.
func seededScalars(rng *rand.Rand, n int) []field.Element {
	rMinus1 := new(big.Int).Sub(field.Modulus(), big.NewInt(1))
	out := make([]field.Element, n)
	for i := range out {
		switch rng.Intn(6) {
		case 0:
			out[i].SetZero()
		case 1:
			out[i].SetOne()
		case 2:
			out[i].SetBigInt(rMinus1) // top digits saturated
		case 3:
			out[i].SetUint64(1 << uint(rng.Intn(64))) // single sparse bit
		default:
			var b [64]byte
			rng.Read(b[:])
			out[i].SetBytesWide(b[:])
		}
	}
	return out
}

func seededPoints(rng *rand.Rand, n int) []curve.AffinePoint {
	g := curve.Generator()
	out := make([]curve.AffinePoint, n)
	for i := range out {
		var k field.Element
		k.SetUint64(rng.Uint64() | 1)
		var j curve.JacobianPoint
		out[i] = j.ScalarMul(&g, &k).ToAffine()
	}
	return out
}

func TestPippengerMatchesDoubleAndAddAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Sizes straddle the WindowBits breakpoints (c changes at powers of
	// two) and include the degenerate ones.
	for _, n := range []int{1, 2, 3, 7, 8, 17, 33, 64, 100} {
		points := seededPoints(rng, n)
		scalars := seededScalars(rng, n)
		want, err := Naive(points, scalars)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Pippenger(points, scalars)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(&want) {
			t.Fatalf("n=%d: Pippenger diverges from double-and-add", n)
		}
		jac, err := PippengerJacobian(points, scalars)
		if err != nil {
			t.Fatal(err)
		}
		if !jac.Equal(&want) {
			t.Fatalf("n=%d: PippengerJacobian diverges from double-and-add", n)
		}
		par, err := Parallel(points, scalars, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !par.Equal(&want) {
			t.Fatalf("n=%d: Parallel diverges from double-and-add", n)
		}
	}
}

// TestMSMAdditiveInScalars: MSM(P, a) + MSM(P, b) = MSM(P, a+b) — the
// bilinearity Pippenger's bucket rearrangement must preserve.
func TestMSMAdditiveInScalars(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 24
	points := seededPoints(rng, n)
	a := seededScalars(rng, n)
	b := seededScalars(rng, n)
	sum := make([]field.Element, n)
	for i := range sum {
		sum[i].Add(&a[i], &b[i])
	}
	ra, err := Pippenger(points, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Pippenger(points, b)
	if err != nil {
		t.Fatal(err)
	}
	rsum, err := Pippenger(points, sum)
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := ra.ToJacobian(), rb.ToJacobian()
	var acc curve.JacobianPoint
	got := acc.Add(&ja, &jb).ToAffine()
	if !got.Equal(&rsum) {
		t.Fatal("MSM is not additive in its scalar vector")
	}
}

// TestMSMInvariantUnderPermutation: the sum must not depend on input
// order (buckets accumulate commutatively).
func TestMSMInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 32
	points := seededPoints(rng, n)
	scalars := seededScalars(rng, n)
	want, err := Pippenger(points, scalars)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(n)
	pp := make([]curve.AffinePoint, n)
	ps := make([]field.Element, n)
	for i, j := range perm {
		pp[i], ps[i] = points[j], scalars[j]
	}
	got, err := Pippenger(pp, ps)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(&want) {
		t.Fatal("MSM changed under input permutation")
	}
}
