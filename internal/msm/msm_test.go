package msm

import (
	"testing"

	"batchzk/internal/curve"
	"batchzk/internal/field"
)

func randInput(n int) ([]curve.AffinePoint, []field.Element) {
	pts := make([]curve.AffinePoint, n)
	for i := range pts {
		pts[i] = curve.RandPoint()
	}
	return pts, field.RandVector(n)
}

func TestPippengerMatchesNaive(t *testing.T) {
	for _, n := range []int{1, 2, 7, 33, 100} {
		pts, scalars := randInput(n)
		want, err := Naive(pts, scalars)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Pippenger(pts, scalars)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(&want) {
			t.Fatalf("n=%d: Pippenger != naive", n)
		}
		if !got.IsOnCurve() {
			t.Fatalf("n=%d: result off curve", n)
		}
	}
}

func TestEmptyAndMismatch(t *testing.T) {
	got, err := Pippenger(nil, nil)
	if err != nil || !got.Infinity {
		t.Fatalf("empty MSM: %v %v", got, err)
	}
	pts, scalars := randInput(4)
	if _, err := Pippenger(pts, scalars[:3]); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
	if _, err := Naive(pts, scalars[:3]); err == nil {
		t.Fatal("naive accepted mismatched lengths")
	}
	if _, err := Parallel(pts, scalars[:3], 2); err == nil {
		t.Fatal("parallel accepted mismatched lengths")
	}
}

func TestZeroScalars(t *testing.T) {
	pts, _ := randInput(10)
	scalars := make([]field.Element, 10)
	got, err := Pippenger(pts, scalars)
	if err != nil || !got.Infinity {
		t.Fatalf("all-zero MSM should be identity: %v %v", got, err)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	pts, scalars := randInput(64)
	want, _ := Pippenger(pts, scalars)
	for _, workers := range []int{0, 1, 3, 8, 100} {
		got, err := Parallel(pts, scalars, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(&want) {
			t.Fatalf("workers=%d mismatch", workers)
		}
	}
}

func TestWindowBits(t *testing.T) {
	if WindowBits(0) != 2 || WindowBits(1) != 2 {
		t.Fatal("tiny inputs should clamp to 2")
	}
	if WindowBits(1<<20) <= 2 {
		t.Fatal("large inputs should widen the window")
	}
	if WindowBits(1<<30) > 16 {
		t.Fatal("window must clamp at 16")
	}
}

func TestWorkPointOps(t *testing.T) {
	if WorkPointOps(0) != 0 {
		t.Fatal("zero points should cost nothing")
	}
	small, large := WorkPointOps(1<<10), WorkPointOps(1<<16)
	if large <= small {
		t.Fatal("work must grow with n")
	}
	// Pippenger is subquadratic: 64× the points must cost far less than
	// 64× naive scalar muls would suggest relative to window growth.
	if large > 64*small {
		t.Fatal("work growth looks superlinear beyond windowing gains")
	}
}

// scalarDigitsBitwise is the slow per-bit reference the flat word-shift
// extraction is checked against.
func scalarDigitsBitwise(k *field.Element, c, numWindows int) []uint32 {
	b := k.ToBytes() // big-endian
	out := make([]uint32, numWindows)
	for w := 0; w < numWindows; w++ {
		lo := w * c
		var v uint32
		for bit := 0; bit < c; bit++ {
			idx := lo + bit
			if idx >= 256 {
				break
			}
			byteIdx := 31 - idx/8
			if b[byteIdx]>>(uint(idx)%8)&1 == 1 {
				v |= 1 << uint(bit)
			}
		}
		out[w] = v
	}
	return out
}

func TestDigitsFlatReconstruction(t *testing.T) {
	scalars := field.RandVector(8)
	for _, c := range []int{2, 7, 8, 13, 16} {
		numWindows := (field.Bits + c - 1) / c
		flat := make([]uint32, len(scalars)*numWindows)
		digitsFlat(flat, scalars, c, numWindows)
		radix := field.NewElement(1 << uint(c))
		for i := range scalars {
			row := flat[i*numWindows : (i+1)*numWindows]
			// The word-shift extraction must agree with the per-bit
			// reference and Σ digit[w]·2^{cw} must rebuild the scalar.
			ref := scalarDigitsBitwise(&scalars[i], c, numWindows)
			for w := range row {
				if row[w] != ref[w] {
					t.Fatalf("c=%d scalar %d window %d: flat %d != bitwise %d", c, i, w, row[w], ref[w])
				}
			}
			recon := field.Zero()
			for w := numWindows - 1; w >= 0; w-- {
				recon.Mul(&recon, &radix)
				d := field.NewElement(uint64(row[w]))
				recon.Add(&recon, &d)
			}
			if !recon.Equal(&scalars[i]) {
				t.Fatalf("c=%d scalar %d: digit decomposition does not reconstruct", c, i)
			}
		}
	}
}

// TestAccumulateWindowZeroAllocations gates the allocation-free contract
// of the per-window batch-affine bucket loop once the state is sized.
func TestAccumulateWindowZeroAllocations(t *testing.T) {
	pts, scalars := randInput(128)
	c := WindowBits(len(pts))
	st := newPippengerState(len(pts), c)
	digitsFlat(st.digits, scalars, c, st.numWindows)
	var sum curve.JacobianPoint
	w := 0
	if n := testing.AllocsPerRun(10, func() {
		st.accumulateWindow(pts, w%st.numWindows, &sum)
		w++
	}); n != 0 {
		t.Errorf("accumulateWindow allocates %.1f times per window, want 0", n)
	}
}

func BenchmarkPippenger256(b *testing.B) {
	pts, scalars := randInput(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pippenger(pts, scalars); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPippengerJacobian256(b *testing.B) {
	pts, scalars := randInput(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PippengerJacobian(pts, scalars); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWindowBitsMinimizesCost: table-driven check over 2^8..2^18 that the
// chosen window minimizes the batch-affine mul-equivalent cost model
// ⌈Bits/c⌉·(6n + 27·2^c) and that windows never shrink as inputs grow.
func TestWindowBitsMinimizesCost(t *testing.T) {
	cost := func(n, c int) int {
		numWindows := (field.Bits + c - 1) / c
		return numWindows * (bucketAddMuls*n + sweepBucketMuls*(1<<uint(c)))
	}
	prev := 0
	for logN := 8; logN <= 18; logN++ {
		n := 1 << logN
		got := WindowBits(n)
		if got < 2 || got > 16 {
			t.Fatalf("n=2^%d: window %d out of [2,16]", logN, got)
		}
		for c := 2; c <= 16; c++ {
			if cost(n, c) < cost(n, got) {
				t.Fatalf("n=2^%d: window %d costs %d, but c=%d costs %d",
					logN, got, cost(n, got), c, cost(n, c))
			}
		}
		if got < prev {
			t.Fatalf("n=2^%d: window shrank from %d to %d", logN, prev, got)
		}
		prev = got
	}
}
