// Package msm implements multi-scalar multiplication Σ kᵢ·Pᵢ with
// Pippenger's bucket algorithm — the dominant operation of the
// Groth16-family baselines (Libsnark, Bellperson, GZKP) that BatchZK's
// Table 7 compares against.
//
// Bucket accumulation is batch-affine: per window, the points landing in
// each bucket are collapsed by pair-and-reduce rounds whose affine chord
// additions share one Montgomery batch inversion per round — ~6
// mul-equivalents per addition versus the 11M+5S a Jacobian add costs.
// Only the final running-sum sweep (2^c buckets) runs in Jacobian
// coordinates, via the dedicated mixed-addition formulas. The window size
// minimizes the resulting mul-equivalent cost model; Parallel variants
// shard the scalars across goroutines the way Bellperson shards across GPU
// thread blocks, which the performance model uses to derive the baseline's
// core utilization.
package msm

import (
	"encoding/binary"
	"fmt"

	"batchzk/internal/curve"
	"batchzk/internal/field"
	"batchzk/internal/fp"
	"batchzk/internal/par"
)

const (
	// bucketAddMuls is the amortized mul-equivalent cost of one
	// batch-affine bucket addition: 2M + 1S for the chord plus ~3M as the
	// addition's share of the round's shared inversion.
	bucketAddMuls = 6
	// sweepBucketMuls is the mul-equivalent cost the running-sum sweep
	// pays per bucket: one mixed add (7M + 4S) into the running point plus
	// one full Jacobian add (11M + 5S) into the window sum.
	sweepBucketMuls = 27
)

// WindowBits picks the Pippenger window size c for n points by minimizing
// the batch-affine mul-equivalent cost ⌈Bits/c⌉·(6n + 27·2^c) over
// c ∈ [2, 16] — each of the ⌈Bits/c⌉ windows pays ~6 muls per amortized
// affine bucket addition and ~27 muls per bucket in the Jacobian
// running-sum sweep. Ties break toward the smaller window (fewer buckets,
// less memory).
func WindowBits(n int) int {
	if n <= 1 {
		return 2
	}
	best, bestCost := 2, -1
	for c := 2; c <= 16; c++ {
		numWindows := (field.Bits + c - 1) / c
		cost := numWindows * (bucketAddMuls*n + sweepBucketMuls*(1<<uint(c)))
		if bestCost < 0 || cost < bestCost {
			best, bestCost = c, cost
		}
	}
	return best
}

// Naive computes Σ kᵢ·Pᵢ by independent scalar multiplications; the
// reference the tests compare Pippenger against.
func Naive(points []curve.AffinePoint, scalars []field.Element) (curve.AffinePoint, error) {
	if len(points) != len(scalars) {
		return curve.AffinePoint{}, fmt.Errorf("msm: %d points vs %d scalars", len(points), len(scalars))
	}
	var acc, term curve.JacobianPoint
	for i := range points {
		term.ScalarMul(&points[i], &scalars[i])
		acc.Add(&acc, &term)
	}
	return acc.ToAffine(), nil
}

// scalarWords returns the canonical (non-Montgomery) value of k as four
// little-endian 64-bit words, the layout digit extraction shifts against.
func scalarWords(k *field.Element) [4]uint64 {
	b := k.ToBytes() // big-endian
	return [4]uint64{
		binary.BigEndian.Uint64(b[24:32]),
		binary.BigEndian.Uint64(b[16:24]),
		binary.BigEndian.Uint64(b[8:16]),
		binary.BigEndian.Uint64(b[0:8]),
	}
}

// digitsFlat fills dst (length n·numWindows) with the c-bit decomposition
// of every scalar; digit (i, w) — bits [w·c, (w+1)·c) of scalar i — lives
// at dst[i·numWindows + w]. One flat slice replaces the former per-scalar
// [][]uint32, and digits come from word shifts instead of per-bit byte
// probing.
func digitsFlat(dst []uint32, scalars []field.Element, c, numWindows int) {
	mask := uint64(1)<<uint(c) - 1
	for i := range scalars {
		words := scalarWords(&scalars[i])
		row := dst[i*numWindows : (i+1)*numWindows]
		for w := range row {
			lo := w * c
			word, shift := lo/64, uint(lo%64)
			v := words[word] >> shift
			if shift+uint(c) > 64 && word+1 < 4 {
				v |= words[word+1] << (64 - shift)
			}
			row[w] = uint32(v & mask)
		}
	}
}

// pippengerState owns every buffer the batch-affine window loop touches,
// so the per-window work runs allocation-free once the state is sized.
type pippengerState struct {
	c          int
	numWindows int
	digits     []uint32            // n×numWindows digits, row-major per scalar
	counts     []int32             // live entries per bucket
	starts     []int32             // segment start of each bucket in work
	work       []curve.AffinePoint // flattened bucket contents
	active     []int32             // buckets with ≥2 live entries
	kinds      []curve.AffineAddKind
	denoms     []fp.Element
	invs       []fp.Element
	scratch    []fp.Element
}

func newPippengerState(n, c int) *pippengerState {
	numWindows := (field.Bits + c - 1) / c
	numBuckets := 1 << uint(c)
	pairCap := n/2 + 1
	return &pippengerState{
		c:          c,
		numWindows: numWindows,
		digits:     make([]uint32, n*numWindows),
		counts:     make([]int32, numBuckets),
		starts:     make([]int32, numBuckets),
		work:       make([]curve.AffinePoint, n),
		active:     make([]int32, 0, numBuckets),
		kinds:      make([]curve.AffineAddKind, pairCap),
		denoms:     make([]fp.Element, pairCap),
		invs:       make([]fp.Element, pairCap),
		scratch:    make([]fp.Element, pairCap),
	}
}

// accumulateWindow reduces window w to a single Jacobian sum: scatter the
// points with a nonzero digit into contiguous per-bucket segments of work,
// collapse every bucket by pair-and-reduce rounds that share one field
// inversion per round, then run the running-sum sweep over the (now
// ≤1-point) buckets. Allocation-free.
func (st *pippengerState) accumulateWindow(points []curve.AffinePoint, w int, sum *curve.JacobianPoint) {
	numBuckets := 1 << uint(st.c)
	counts, starts := st.counts, st.starts
	for b := range counts {
		counts[b] = 0
	}
	for i := range points {
		counts[st.digits[i*st.numWindows+w]]++
	}
	pos := int32(0)
	for b := 1; b < numBuckets; b++ { // bucket 0 contributes nothing
		starts[b] = pos
		pos += counts[b]
	}
	for b := range counts { // reuse counts as scatter cursors
		counts[b] = 0
	}
	for i := range points {
		d := st.digits[i*st.numWindows+w]
		if d == 0 {
			continue
		}
		st.work[starts[d]+counts[d]] = points[i]
		counts[d]++
	}

	st.active = st.active[:0]
	for b := 1; b < numBuckets; b++ {
		if counts[b] >= 2 {
			st.active = append(st.active, int32(b))
		}
	}
	for len(st.active) > 0 {
		// Classify every pair first so the denominators can share one
		// batch inversion; completion below must therefore not clobber an
		// operand before its pair is resolved — pair t of a segment writes
		// slot s+t and reads s+2t, s+2t+1, which later pairs never touch.
		pairs := 0
		for _, b := range st.active {
			s, cnt := starts[b], counts[b]
			for t := int32(0); t < cnt/2; t++ {
				l := s + 2*t
				st.kinds[pairs] = curve.ClassifyAffineAdd(&st.work[l], &st.work[l+1], &st.denoms[pairs])
				pairs++
			}
		}
		fp.BatchInverseWithScratch(st.invs[:pairs], st.denoms[:pairs], st.scratch[:pairs])
		pairs = 0
		next := st.active[:0]
		for _, b := range st.active {
			s, cnt := starts[b], counts[b]
			half := cnt / 2
			for t := int32(0); t < half; t++ {
				l := s + 2*t
				curve.CompleteAffineAdd(&st.work[s+t], &st.work[l], &st.work[l+1], st.kinds[pairs], &st.invs[pairs])
				pairs++
			}
			if cnt%2 == 1 {
				st.work[s+half] = st.work[s+cnt-1]
				counts[b] = half + 1
			} else {
				counts[b] = half
			}
			if counts[b] >= 2 {
				next = append(next, b)
			}
		}
		st.active = next
	}

	// Running-sum trick: Σ d·bucket[d] via two sweeps. Collapsed buckets
	// may hold the identity (full cancellation) — AddMixed absorbs it.
	var running, windowSum curve.JacobianPoint
	for b := numBuckets - 1; b >= 1; b-- {
		if counts[b] == 1 {
			running.AddMixed(&running, &st.work[starts[b]])
		}
		windowSum.Add(&windowSum, &running)
	}
	*sum = windowSum
}

// Pippenger computes Σ kᵢ·Pᵢ with the batch-affine bucket method.
func Pippenger(points []curve.AffinePoint, scalars []field.Element) (curve.AffinePoint, error) {
	if len(points) != len(scalars) {
		return curve.AffinePoint{}, fmt.Errorf("msm: %d points vs %d scalars", len(points), len(scalars))
	}
	if len(points) == 0 {
		return curve.Identity(), nil
	}
	c := WindowBits(len(points))
	st := newPippengerState(len(points), c)
	digitsFlat(st.digits, scalars, c, st.numWindows)

	var result, windowSum curve.JacobianPoint
	for w := st.numWindows - 1; w >= 0; w-- {
		for s := 0; s < c; s++ {
			result.Double(&result)
		}
		st.accumulateWindow(points, w, &windowSum)
		result.Add(&result, &windowSum)
	}
	return result.ToAffine(), nil
}

// PippengerJacobian is the pre-optimization bucket method — buckets
// accumulated directly in Jacobian coordinates via mixed additions —
// retained as a differential-test reference for the batch-affine path. It
// shares the flat digit layout so the property tests cover both layouts
// against Naive.
func PippengerJacobian(points []curve.AffinePoint, scalars []field.Element) (curve.AffinePoint, error) {
	if len(points) != len(scalars) {
		return curve.AffinePoint{}, fmt.Errorf("msm: %d points vs %d scalars", len(points), len(scalars))
	}
	if len(points) == 0 {
		return curve.Identity(), nil
	}
	c := WindowBits(len(points))
	numWindows := (field.Bits + c - 1) / c
	digits := make([]uint32, len(scalars)*numWindows)
	digitsFlat(digits, scalars, c, numWindows)

	var result curve.JacobianPoint
	buckets := make([]curve.JacobianPoint, 1<<uint(c))
	for w := numWindows - 1; w >= 0; w-- {
		for s := 0; s < c; s++ {
			result.Double(&result)
		}
		for i := range buckets {
			buckets[i] = curve.JacobianPoint{}
		}
		for i := range points {
			if d := digits[i*numWindows+w]; d != 0 {
				buckets[d].AddMixed(&buckets[d], &points[i])
			}
		}
		var running, windowSum curve.JacobianPoint
		for d := len(buckets) - 1; d >= 1; d-- {
			running.Add(&running, &buckets[d])
			windowSum.Add(&windowSum, &running)
		}
		result.Add(&result, &windowSum)
	}
	return result.ToAffine(), nil
}

// Parallel computes the MSM by splitting the input across the shared
// kernel runtime and summing the per-chunk partial MSMs in chunk order;
// workers ≤ 0 selects the runtime's default width. The group sum is
// exact, so the result matches Pippenger over the whole input for any
// chunking.
func Parallel(points []curve.AffinePoint, scalars []field.Element, workers int) (curve.AffinePoint, error) {
	if len(points) != len(scalars) {
		return curve.AffinePoint{}, fmt.Errorf("msm: %d points vs %d scalars", len(points), len(scalars))
	}
	if len(points) == 0 {
		return curve.Identity(), nil
	}
	k := par.Chunks(workers, len(points))
	if k <= 1 {
		return Pippenger(points, scalars)
	}
	partials := make([]curve.AffinePoint, k)
	errs := make([]error, k)
	par.ForChunks(k, len(points), func(c, lo, hi int) {
		partials[c], errs[c] = Pippenger(points[lo:hi], scalars[lo:hi])
	})
	var acc curve.JacobianPoint
	for c := range partials {
		if errs[c] != nil {
			return curve.AffinePoint{}, errs[c]
		}
		pj := partials[c].ToJacobian()
		acc.Add(&acc, &pj)
	}
	return acc.ToAffine(), nil
}

// WorkPointOps estimates the group-operation count of a Pippenger MSM over
// n points — the quantity the Bellperson/Libsnark performance models
// charge. Each window processes n bucket additions plus ~2^{c+1} sweep
// additions, and there are ⌈254/c⌉ windows (plus 254 doublings). With
// batch-affine buckets the per-op costs differ by class; WorkBreakdown
// exposes the split for models that charge them separately.
func WorkPointOps(n int) int {
	b, s, d := WorkBreakdown(n)
	return b + s + d
}

// WorkBreakdown splits the Pippenger operation count into the three cost
// classes the batch-affine implementation pays differently: amortized
// affine bucket additions (~6 mul-equivalents each), running-sum sweep
// additions over the 2^{c+1} per-window bucket visits (full Jacobian
// cost), and the per-window doublings.
func WorkBreakdown(n int) (bucketAdds, sweepAdds, doublings int) {
	if n <= 0 {
		return 0, 0, 0
	}
	c := WindowBits(n)
	numWindows := (field.Bits + c - 1) / c
	return numWindows * n, numWindows * (2 << uint(c)), field.Bits
}
