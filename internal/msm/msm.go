// Package msm implements multi-scalar multiplication Σ kᵢ·Pᵢ with
// Pippenger's bucket algorithm — the dominant operation of the
// Groth16-family baselines (Libsnark, Bellperson, GZKP) that BatchZK's
// Table 7 compares against.
//
// The window size follows the usual ln(n)-style heuristic; Parallel
// variants shard the scalars across goroutines the way Bellperson shards
// across GPU thread blocks, which the performance model uses to derive the
// baseline's core utilization.
package msm

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"batchzk/internal/curve"
	"batchzk/internal/field"
)

// WindowBits picks the Pippenger window size c for n points (≈ log₂n − 3,
// clamped to [2, 16]).
func WindowBits(n int) int {
	if n <= 1 {
		return 2
	}
	c := bits.Len(uint(n)) - 3
	if c < 2 {
		c = 2
	}
	if c > 16 {
		c = 16
	}
	return c
}

// Naive computes Σ kᵢ·Pᵢ by independent scalar multiplications; the
// reference the tests compare Pippenger against.
func Naive(points []curve.AffinePoint, scalars []field.Element) (curve.AffinePoint, error) {
	if len(points) != len(scalars) {
		return curve.AffinePoint{}, fmt.Errorf("msm: %d points vs %d scalars", len(points), len(scalars))
	}
	var acc, term curve.JacobianPoint
	for i := range points {
		term.ScalarMul(&points[i], &scalars[i])
		acc.Add(&acc, &term)
	}
	return acc.ToAffine(), nil
}

// Pippenger computes Σ kᵢ·Pᵢ with the bucket method.
func Pippenger(points []curve.AffinePoint, scalars []field.Element) (curve.AffinePoint, error) {
	if len(points) != len(scalars) {
		return curve.AffinePoint{}, fmt.Errorf("msm: %d points vs %d scalars", len(points), len(scalars))
	}
	if len(points) == 0 {
		return curve.Identity(), nil
	}
	c := WindowBits(len(points))
	numWindows := (field.Bits + c - 1) / c

	// Decompose scalars into c-bit digits, most significant window first.
	digits := make([][]uint32, len(scalars))
	for i := range scalars {
		digits[i] = scalarDigits(&scalars[i], c, numWindows)
	}

	var result curve.JacobianPoint
	buckets := make([]curve.JacobianPoint, 1<<c)
	for w := numWindows - 1; w >= 0; w-- {
		for s := 0; s < c; s++ {
			result.Double(&result)
		}
		for i := range buckets {
			buckets[i] = curve.JacobianPoint{}
		}
		for i := range points {
			d := digits[i][w]
			if d != 0 {
				buckets[d].AddMixed(&buckets[d], &points[i])
			}
		}
		// Running-sum trick: Σ d·bucket[d] via two sweeps.
		var running, windowSum curve.JacobianPoint
		for d := len(buckets) - 1; d >= 1; d-- {
			running.Add(&running, &buckets[d])
			windowSum.Add(&windowSum, &running)
		}
		result.Add(&result, &windowSum)
	}
	return result.ToAffine(), nil
}

// scalarDigits splits the canonical value of k into numWindows little-
// endian groups of c bits; index w holds bits [w·c, (w+1)·c).
func scalarDigits(k *field.Element, c, numWindows int) []uint32 {
	b := k.ToBytes() // big-endian
	out := make([]uint32, numWindows)
	for w := 0; w < numWindows; w++ {
		lo := w * c
		var v uint32
		for bit := 0; bit < c; bit++ {
			idx := lo + bit
			if idx >= 256 {
				break
			}
			byteIdx := 31 - idx/8
			if b[byteIdx]>>(uint(idx)%8)&1 == 1 {
				v |= 1 << uint(bit)
			}
		}
		out[w] = v
	}
	return out
}

// Parallel computes the MSM by splitting the input across workers and
// summing the partial results; workers ≤ 0 selects GOMAXPROCS.
func Parallel(points []curve.AffinePoint, scalars []field.Element, workers int) (curve.AffinePoint, error) {
	if len(points) != len(scalars) {
		return curve.AffinePoint{}, fmt.Errorf("msm: %d points vs %d scalars", len(points), len(scalars))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	if workers <= 1 {
		return Pippenger(points, scalars)
	}
	partials := make([]curve.AffinePoint, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(points) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(points))
		if lo >= hi {
			partials[w] = curve.Identity()
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w], errs[w] = Pippenger(points[lo:hi], scalars[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	var acc curve.JacobianPoint
	for w := range partials {
		if errs[w] != nil {
			return curve.AffinePoint{}, errs[w]
		}
		pj := partials[w].ToJacobian()
		acc.Add(&acc, &pj)
	}
	return acc.ToAffine(), nil
}

// WorkPointOps estimates the group-operation count of a Pippenger MSM over
// n points — the quantity the Bellperson/Libsnark performance models
// charge. Each window processes n bucket additions plus ~2^{c+1} sweep
// additions, and there are ⌈254/c⌉ windows (plus 254 doublings).
func WorkPointOps(n int) int {
	if n <= 0 {
		return 0
	}
	c := WindowBits(n)
	numWindows := (field.Bits + c - 1) / c
	return numWindows*(n+2<<uint(c)) + field.Bits
}
