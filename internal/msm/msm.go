// Package msm implements multi-scalar multiplication Σ kᵢ·Pᵢ with
// Pippenger's bucket algorithm — the dominant operation of the
// Groth16-family baselines (Libsnark, Bellperson, GZKP) that BatchZK's
// Table 7 compares against.
//
// The window size follows the usual ln(n)-style heuristic; Parallel
// variants shard the scalars across goroutines the way Bellperson shards
// across GPU thread blocks, which the performance model uses to derive the
// baseline's core utilization.
package msm

import (
	"fmt"

	"batchzk/internal/curve"
	"batchzk/internal/field"
	"batchzk/internal/par"
)

// WindowBits picks the Pippenger window size c for n points by minimizing
// the algorithm's group-operation count ⌈Bits/c⌉·(n + 2^{c+1}) over
// c ∈ [2, 16] — each of the ⌈Bits/c⌉ windows costs n bucket additions
// plus ~2^{c+1} running-sum additions. Ties break toward the smaller
// window (fewer buckets, less memory).
func WindowBits(n int) int {
	if n <= 1 {
		return 2
	}
	best, bestCost := 2, -1
	for c := 2; c <= 16; c++ {
		numWindows := (field.Bits + c - 1) / c
		cost := numWindows * (n + 2<<uint(c))
		if bestCost < 0 || cost < bestCost {
			best, bestCost = c, cost
		}
	}
	return best
}

// Naive computes Σ kᵢ·Pᵢ by independent scalar multiplications; the
// reference the tests compare Pippenger against.
func Naive(points []curve.AffinePoint, scalars []field.Element) (curve.AffinePoint, error) {
	if len(points) != len(scalars) {
		return curve.AffinePoint{}, fmt.Errorf("msm: %d points vs %d scalars", len(points), len(scalars))
	}
	var acc, term curve.JacobianPoint
	for i := range points {
		term.ScalarMul(&points[i], &scalars[i])
		acc.Add(&acc, &term)
	}
	return acc.ToAffine(), nil
}

// Pippenger computes Σ kᵢ·Pᵢ with the bucket method.
func Pippenger(points []curve.AffinePoint, scalars []field.Element) (curve.AffinePoint, error) {
	if len(points) != len(scalars) {
		return curve.AffinePoint{}, fmt.Errorf("msm: %d points vs %d scalars", len(points), len(scalars))
	}
	if len(points) == 0 {
		return curve.Identity(), nil
	}
	c := WindowBits(len(points))
	numWindows := (field.Bits + c - 1) / c

	// Decompose scalars into c-bit digits, most significant window first.
	digits := make([][]uint32, len(scalars))
	for i := range scalars {
		digits[i] = scalarDigits(&scalars[i], c, numWindows)
	}

	var result curve.JacobianPoint
	buckets := make([]curve.JacobianPoint, 1<<c)
	for w := numWindows - 1; w >= 0; w-- {
		for s := 0; s < c; s++ {
			result.Double(&result)
		}
		for i := range buckets {
			buckets[i] = curve.JacobianPoint{}
		}
		for i := range points {
			d := digits[i][w]
			if d != 0 {
				buckets[d].AddMixed(&buckets[d], &points[i])
			}
		}
		// Running-sum trick: Σ d·bucket[d] via two sweeps.
		var running, windowSum curve.JacobianPoint
		for d := len(buckets) - 1; d >= 1; d-- {
			running.Add(&running, &buckets[d])
			windowSum.Add(&windowSum, &running)
		}
		result.Add(&result, &windowSum)
	}
	return result.ToAffine(), nil
}

// scalarDigits splits the canonical value of k into numWindows little-
// endian groups of c bits; index w holds bits [w·c, (w+1)·c).
func scalarDigits(k *field.Element, c, numWindows int) []uint32 {
	b := k.ToBytes() // big-endian
	out := make([]uint32, numWindows)
	for w := 0; w < numWindows; w++ {
		lo := w * c
		var v uint32
		for bit := 0; bit < c; bit++ {
			idx := lo + bit
			if idx >= 256 {
				break
			}
			byteIdx := 31 - idx/8
			if b[byteIdx]>>(uint(idx)%8)&1 == 1 {
				v |= 1 << uint(bit)
			}
		}
		out[w] = v
	}
	return out
}

// Parallel computes the MSM by splitting the input across the shared
// kernel runtime and summing the per-chunk partial MSMs in chunk order;
// workers ≤ 0 selects the runtime's default width. The group sum is
// exact, so the result matches Pippenger over the whole input for any
// chunking.
func Parallel(points []curve.AffinePoint, scalars []field.Element, workers int) (curve.AffinePoint, error) {
	if len(points) != len(scalars) {
		return curve.AffinePoint{}, fmt.Errorf("msm: %d points vs %d scalars", len(points), len(scalars))
	}
	if len(points) == 0 {
		return curve.Identity(), nil
	}
	k := par.Chunks(workers, len(points))
	if k <= 1 {
		return Pippenger(points, scalars)
	}
	partials := make([]curve.AffinePoint, k)
	errs := make([]error, k)
	par.ForChunks(k, len(points), func(c, lo, hi int) {
		partials[c], errs[c] = Pippenger(points[lo:hi], scalars[lo:hi])
	})
	var acc curve.JacobianPoint
	for c := range partials {
		if errs[c] != nil {
			return curve.AffinePoint{}, errs[c]
		}
		pj := partials[c].ToJacobian()
		acc.Add(&acc, &pj)
	}
	return acc.ToAffine(), nil
}

// WorkPointOps estimates the group-operation count of a Pippenger MSM over
// n points — the quantity the Bellperson/Libsnark performance models
// charge. Each window processes n bucket additions plus ~2^{c+1} sweep
// additions, and there are ⌈254/c⌉ windows (plus 254 doublings).
func WorkPointOps(n int) int {
	if n <= 0 {
		return 0
	}
	c := WindowBits(n)
	numWindows := (field.Bits + c - 1) / c
	return numWindows*(n+2<<uint(c)) + field.Bits
}
