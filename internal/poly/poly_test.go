package poly

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"batchzk/internal/field"
)

func elem(v uint64) field.Element { return field.NewElement(v) }

func randVec(r *rand.Rand, n int) []field.Element {
	v := make([]field.Element, n)
	for i := range v {
		v[i].SetBigInt(new(big.Int).Rand(r, field.Modulus()))
	}
	return v
}

func TestNewMultilinearValidation(t *testing.T) {
	if _, err := NewMultilinear(nil); err == nil {
		t.Fatal("accepted empty table")
	}
	if _, err := NewMultilinear(make([]field.Element, 3)); err == nil {
		t.Fatal("accepted non-power-of-two table")
	}
	m, err := NewMultilinear(make([]field.Element, 8))
	if err != nil || m.NumVars() != 3 {
		t.Fatalf("NumVars = %d, err %v", m.NumVars(), err)
	}
}

func TestEvaluateOnHypercube(t *testing.T) {
	// At Boolean points, Evaluate must return the table entry.
	r := rand.New(rand.NewSource(1))
	m, _ := NewMultilinear(randVec(r, 8))
	for b := 0; b < 8; b++ {
		pt := []field.Element{
			elem(uint64(b & 1)),
			elem(uint64(b >> 1 & 1)),
			elem(uint64(b >> 2 & 1)),
		}
		got, err := m.Evaluate(pt)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(&m.Evals()[b]) {
			t.Fatalf("Evaluate at corner %d mismatch", b)
		}
	}
	if _, err := m.Evaluate(pt2(1, 2)); err == nil {
		t.Fatal("accepted wrong arity")
	}
}

func pt2(a, b uint64) []field.Element { return []field.Element{elem(a), elem(b)} }

func TestEvaluateIsMultilinear(t *testing.T) {
	// p must be degree ≤ 1 in each variable: p(..., x, ...) linear in x.
	r := rand.New(rand.NewSource(2))
	m, _ := NewMultilinear(randVec(r, 16))
	base := randVec(r, 4)
	for v := 0; v < 4; v++ {
		p0 := append([]field.Element{}, base...)
		p1 := append([]field.Element{}, base...)
		p2 := append([]field.Element{}, base...)
		p0[v] = elem(0)
		p1[v] = elem(1)
		p2[v] = elem(2)
		e0, _ := m.Evaluate(p0)
		e1, _ := m.Evaluate(p1)
		e2, _ := m.Evaluate(p2)
		// Linear ⇒ e2 = 2·e1 - e0.
		var want field.Element
		want.Double(&e1)
		want.Sub(&want, &e0)
		if !want.Equal(&e2) {
			t.Fatalf("variable %d is not linear", v)
		}
	}
}

func TestFixLastVariable(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m, _ := NewMultilinear(randVec(r, 16))
	var rv field.Element
	rv.SetBigInt(new(big.Int).Rand(r, field.Modulus()))
	fixed := m.FixLastVariable(rv)
	if fixed.NumVars() != 3 {
		t.Fatalf("NumVars after fix = %d", fixed.NumVars())
	}
	// p(x1,x2,x3, r) must equal fixed(x1,x2,x3) at a random point.
	pt := randVec(r, 3)
	got, _ := fixed.Evaluate(pt)
	want, _ := m.Evaluate(append(append([]field.Element{}, pt...), rv))
	if !got.Equal(&want) {
		t.Fatalf("FixLastVariable inconsistent with Evaluate")
	}
}

func TestEqTable(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	z := randVec(r, 3)
	table := EqTable(z)
	if len(table) != 8 {
		t.Fatalf("EqTable size = %d", len(table))
	}
	// Σ_b eq(b, z)·p(b) == p(z)
	m, _ := NewMultilinear(randVec(r, 8))
	ip := field.InnerProduct(table, m.Evals())
	want, _ := m.Evaluate(z)
	if !ip.Equal(&want) {
		t.Fatalf("eq-table inner product != evaluation")
	}
	// eq at Boolean z reduces to an indicator vector.
	zb := []field.Element{elem(1), elem(0), elem(1)}
	ind := EqTable(zb)
	for b := 0; b < 8; b++ {
		want := elem(0)
		if b == 5 { // bits (1,0,1) low-first = 1 + 4
			want = elem(1)
		}
		if !ind[b].Equal(&want) {
			t.Fatalf("indicator mismatch at %d", b)
		}
	}
}

func TestHypercubeSum(t *testing.T) {
	m, _ := NewMultilinear([]field.Element{elem(1), elem(2), elem(3), elem(4)})
	s := m.HypercubeSum()
	if v, _ := s.Uint64(); v != 10 {
		t.Fatalf("HypercubeSum = %d", v)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m, _ := NewMultilinear([]field.Element{elem(1), elem(2)})
	c := m.Clone()
	c.Evals()[0] = elem(99)
	if v, _ := m.Evals()[0].Uint64(); v != 1 {
		t.Fatalf("Clone aliased the table")
	}
}

func TestDenseEvalAddMulScale(t *testing.T) {
	// d = 3 + 2x, e = 1 + x^2
	d := NewDense([]field.Element{elem(3), elem(2)})
	e := NewDense([]field.Element{elem(1), elem(0), elem(1)})
	x := elem(5)
	ev := d.Eval(&x)
	if v, _ := ev.Uint64(); v != 13 {
		t.Fatalf("d(5) = %d", v)
	}
	ev = d.Add(e).Eval(&x)
	if v, _ := ev.Uint64(); v != 13+26 {
		t.Fatalf("(d+e)(5) = %d", v)
	}
	prod := d.Mul(e)
	ev = prod.Eval(&x)
	if v, _ := ev.Uint64(); v != 13*26 {
		t.Fatalf("(d·e)(5) = %d", v)
	}
	if prod.Degree() != 3 {
		t.Fatalf("deg(d·e) = %d", prod.Degree())
	}
	s := elem(2)
	ev = d.Scale(&s).Eval(&x)
	if v, _ := ev.Uint64(); v != 26 {
		t.Fatalf("(2d)(5) = %d", v)
	}
	// Trimming: leading zeros removed.
	z := NewDense([]field.Element{elem(1), elem(0), elem(0)})
	if z.Degree() != 0 {
		t.Fatalf("trim failed, degree %d", z.Degree())
	}
	empty := &Dense{}
	if got := empty.Mul(d); got.Degree() != -1 {
		t.Fatalf("0·d degree = %d", got.Degree())
	}
}

func TestInterpolate(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	xs := []field.Element{elem(0), elem(1), elem(2), elem(7)}
	ys := randVec(r, 4)
	p, err := Interpolate(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degree() > 3 {
		t.Fatalf("degree %d", p.Degree())
	}
	for i := range xs {
		got := p.Eval(&xs[i])
		if !got.Equal(&ys[i]) {
			t.Fatalf("interpolant misses point %d", i)
		}
	}
	if _, err := Interpolate(xs, ys[:3]); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
	if _, err := Interpolate([]field.Element{elem(1), elem(1)}, ys[:2]); err == nil {
		t.Fatal("accepted duplicate abscissae")
	}
}

func TestInterpolateEvalAt(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	ys := randVec(r, 3) // degree-2 polynomial through (0,1,2)
	xs := []field.Element{elem(0), elem(1), elem(2)}
	p, _ := Interpolate(xs, ys)
	// At the nodes.
	for i := range xs {
		got := InterpolateEvalAt(ys, &xs[i])
		if !got.Equal(&ys[i]) {
			t.Fatalf("node %d mismatch", i)
		}
	}
	// At random points, compare with the coefficient form.
	for i := 0; i < 10; i++ {
		x := randVec(r, 1)[0]
		got := InterpolateEvalAt(ys, &x)
		want := p.Eval(&x)
		if !got.Equal(&want) {
			t.Fatalf("random point %d mismatch", i)
		}
	}
}

func TestPropertyEvaluateLinearity(t *testing.T) {
	// Evaluate(a·p + b·q) == a·Evaluate(p) + b·Evaluate(q)
	rsrc := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, _ := NewMultilinear(randVec(r, 8))
		q, _ := NewMultilinear(randVec(r, 8))
		a, b := randVec(r, 1)[0], randVec(r, 1)[0]
		comb := make([]field.Element, 8)
		for i := range comb {
			var t1, t2 field.Element
			t1.Mul(&a, &p.Evals()[i])
			t2.Mul(&b, &q.Evals()[i])
			comb[i].Add(&t1, &t2)
		}
		c, _ := NewMultilinear(comb)
		pt := randVec(r, 3)
		ec, _ := c.Evaluate(pt)
		ep, _ := p.Evaluate(pt)
		eq, _ := q.Evaluate(pt)
		var want, t2 field.Element
		want.Mul(&a, &ep)
		t2.Mul(&b, &eq)
		want.Add(&want, &t2)
		return ec.Equal(&want)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rsrc}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
