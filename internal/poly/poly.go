// Package poly provides the polynomial machinery used by BatchZK's
// sum-check and polynomial-commitment modules: multilinear polynomials
// represented by their evaluation table over the Boolean hypercube,
// univariate dense polynomials, and Lagrange interpolation (used by the
// system in §4 of the paper to encode intermediate proving results).
package poly

import (
	"fmt"
	"math/bits"

	"batchzk/internal/field"
)

// Multilinear is a multilinear polynomial p(x_1, …, x_n) represented by its
// 2^n evaluations over the Boolean hypercube. Entry b holds
// p(b_1, …, b_n) where b = Σ b_i·2^{i-1} — the index convention of
// Algorithm 1 in the paper (x_1 is the lowest-order bit).
type Multilinear struct {
	evals []field.Element
	n     int // number of variables
}

// NewMultilinear wraps an evaluation table whose length must be a power of
// two. The table is used directly (not copied).
func NewMultilinear(evals []field.Element) (*Multilinear, error) {
	n := len(evals)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("poly: table length %d is not a positive power of two", n)
	}
	return &Multilinear{evals: evals, n: bits.TrailingZeros(uint(n))}, nil
}

// RandMultilinear returns a random multilinear polynomial in n variables.
func RandMultilinear(n int) *Multilinear {
	m, err := NewMultilinear(field.RandVector(1 << n))
	if err != nil {
		panic(err)
	}
	return m
}

// NumVars returns the number n of variables.
func (m *Multilinear) NumVars() int { return m.n }

// Evals exposes the backing evaluation table.
func (m *Multilinear) Evals() []field.Element { return m.evals }

// Clone returns a deep copy.
func (m *Multilinear) Clone() *Multilinear {
	c := make([]field.Element, len(m.evals))
	copy(c, m.evals)
	return &Multilinear{evals: c, n: m.n}
}

// HypercubeSum returns Σ_{b ∈ {0,1}^n} p(b) — the value H that the
// sum-check protocol proves.
func (m *Multilinear) HypercubeSum() field.Element {
	return field.VectorSum(m.evals)
}

// Evaluate computes p(point) for an arbitrary field point, folding the
// table variable by variable in O(2^n) field operations.
func (m *Multilinear) Evaluate(point []field.Element) (field.Element, error) {
	if len(point) != m.n {
		return field.Element{}, fmt.Errorf("poly: point has %d coordinates, want %d", len(point), m.n)
	}
	cur := make([]field.Element, len(m.evals))
	copy(cur, m.evals)
	for i := 0; i < m.n; i++ {
		half := len(cur) / 2
		r := point[i]
		// Variable x_{i+1} is the low-order bit: pairs are (2b, 2b+1)?
		// With b = Σ b_i 2^{i-1}, x_1 toggles adjacent entries, so fold
		// adjacent pairs: p|x1=r [b] = lerp(r, cur[2b], cur[2b+1]).
		for b := 0; b < half; b++ {
			cur[b].Lerp(&r, &cur[2*b], &cur[2*b+1])
		}
		cur = cur[:half]
	}
	return cur[0], nil
}

// FixLastVariable returns the table of p with x_n fixed to r — exactly the
// update on line 6 of Algorithm 1 ("A[b] = (1-r)·A[b] + r·A[b+2^{n-i}]"),
// which halves the table. The receiver is unchanged.
func (m *Multilinear) FixLastVariable(r field.Element) *Multilinear {
	half := len(m.evals) / 2
	out := make([]field.Element, half)
	for b := 0; b < half; b++ {
		out[b].Lerp(&r, &m.evals[b], &m.evals[b+half])
	}
	return &Multilinear{evals: out, n: m.n - 1}
}

// EqTable returns the table eq(b, point) for all b ∈ {0,1}^n — the
// multilinear extension of equality, used to turn arbitrary-evaluation
// claims into hypercube sums: p(z) = Σ_b eq(b,z)·p(b).
func EqTable(point []field.Element) []field.Element {
	out := []field.Element{field.One()}
	oneEl := field.One()
	for i := len(point) - 1; i >= 0; i-- {
		// Prepend variable i (so ordering matches the low-bit-first index).
		next := make([]field.Element, 2*len(out))
		var omr field.Element
		omr.Sub(&oneEl, &point[i])
		for b, v := range out {
			next[2*b].Mul(&v, &omr)        // b_i = 0 contributes (1 - z_i)
			next[2*b+1].Mul(&v, &point[i]) // b_i = 1 contributes z_i
		}
		out = next
	}
	return out
}

// EqEval returns eq(z, y) = Π_i (z_i·y_i + (1−z_i)(1−y_i)) in O(n) —
// the closed form verifiers use to evaluate the equality polynomial at a
// sum-check challenge point without materializing a table.
func EqEval(z, y []field.Element) (field.Element, error) {
	if len(z) != len(y) {
		return field.Element{}, fmt.Errorf("poly: eq arity mismatch %d vs %d", len(z), len(y))
	}
	out := field.One()
	oneEl := field.One()
	var zy, omz, omy, term field.Element
	for i := range z {
		zy.Mul(&z[i], &y[i])
		omz.Sub(&oneEl, &z[i])
		omy.Sub(&oneEl, &y[i])
		term.Mul(&omz, &omy)
		term.Add(&term, &zy)
		out.Mul(&out, &term)
	}
	return out, nil
}

// Dense is a univariate polynomial Σ c_i·x^i stored by coefficients,
// low-degree first.
type Dense struct {
	Coeffs []field.Element
}

// NewDense builds a polynomial from coefficients (low-degree first);
// trailing zero coefficients are trimmed.
func NewDense(coeffs []field.Element) *Dense {
	d := &Dense{Coeffs: append([]field.Element(nil), coeffs...)}
	d.trim()
	return d
}

func (d *Dense) trim() {
	n := len(d.Coeffs)
	for n > 0 && d.Coeffs[n-1].IsZero() {
		n--
	}
	d.Coeffs = d.Coeffs[:n]
}

// Degree returns the degree; the zero polynomial has degree -1.
func (d *Dense) Degree() int { return len(d.Coeffs) - 1 }

// Eval evaluates the polynomial at x by Horner's rule.
func (d *Dense) Eval(x *field.Element) field.Element {
	var acc field.Element
	for i := len(d.Coeffs) - 1; i >= 0; i-- {
		acc.Mul(&acc, x)
		acc.Add(&acc, &d.Coeffs[i])
	}
	return acc
}

// Add returns d + e.
func (d *Dense) Add(e *Dense) *Dense {
	n := max(len(d.Coeffs), len(e.Coeffs))
	out := make([]field.Element, n)
	for i := range out {
		var a, b field.Element
		if i < len(d.Coeffs) {
			a = d.Coeffs[i]
		}
		if i < len(e.Coeffs) {
			b = e.Coeffs[i]
		}
		out[i].Add(&a, &b)
	}
	return NewDense(out)
}

// Mul returns d·e by schoolbook multiplication.
func (d *Dense) Mul(e *Dense) *Dense {
	if len(d.Coeffs) == 0 || len(e.Coeffs) == 0 {
		return &Dense{}
	}
	out := make([]field.Element, len(d.Coeffs)+len(e.Coeffs)-1)
	var t field.Element
	for i := range d.Coeffs {
		for j := range e.Coeffs {
			t.Mul(&d.Coeffs[i], &e.Coeffs[j])
			out[i+j].Add(&out[i+j], &t)
		}
	}
	return NewDense(out)
}

// Scale returns s·d.
func (d *Dense) Scale(s *field.Element) *Dense {
	out := make([]field.Element, len(d.Coeffs))
	for i := range out {
		out[i].Mul(&d.Coeffs[i], s)
	}
	return NewDense(out)
}

// Interpolate returns the unique polynomial of degree < len(xs) through the
// points (xs[i], ys[i]) via Lagrange interpolation. The xs must be
// pairwise distinct.
func Interpolate(xs, ys []field.Element) (*Dense, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("poly: %d abscissae vs %d ordinates", len(xs), len(ys))
	}
	for i := range xs {
		for j := i + 1; j < len(xs); j++ {
			if xs[i].Equal(&xs[j]) {
				return nil, fmt.Errorf("poly: duplicate abscissa at %d and %d", i, j)
			}
		}
	}
	acc := &Dense{}
	for i := range xs {
		// basis_i(x) = Π_{j≠i} (x - xs[j]) / (xs[i] - xs[j])
		basis := NewDense([]field.Element{field.One()})
		denom := field.One()
		for j := range xs {
			if j == i {
				continue
			}
			var negXj field.Element
			negXj.Neg(&xs[j])
			basis = basis.Mul(NewDense([]field.Element{negXj, field.One()}))
			var diff field.Element
			diff.Sub(&xs[i], &xs[j])
			denom.Mul(&denom, &diff)
		}
		var coeff field.Element
		coeff.Inverse(&denom)
		coeff.Mul(&coeff, &ys[i])
		acc = acc.Add(basis.Scale(&coeff))
	}
	return acc, nil
}

// InterpolateEvalAt evaluates the degree-(k-1) interpolant through points
// (0, ys[0]), (1, ys[1]), …, (k-1, ys[k-1]) at x, without materializing
// coefficients — the form sum-check verifiers use on round polynomials
// transmitted as evaluations at small integers.
func InterpolateEvalAt(ys []field.Element, x *field.Element) field.Element {
	k := len(ys)
	// If x is one of the nodes, return directly.
	for i := 0; i < k; i++ {
		node := field.NewElement(uint64(i))
		if node.Equal(x) {
			return ys[i]
		}
	}
	// prefix[i] = Π_{j<i} (x - j), suffix[i] = Π_{j>i} (x - j)
	prefix := make([]field.Element, k)
	suffix := make([]field.Element, k)
	acc := field.One()
	for i := 0; i < k; i++ {
		prefix[i] = acc
		node := field.NewElement(uint64(i))
		var d field.Element
		d.Sub(x, &node)
		acc.Mul(&acc, &d)
	}
	acc = field.One()
	for i := k - 1; i >= 0; i-- {
		suffix[i] = acc
		node := field.NewElement(uint64(i))
		var d field.Element
		d.Sub(x, &node)
		acc.Mul(&acc, &d)
	}
	// denominators: i!·(k-1-i)!·(-1)^{k-1-i}
	var out field.Element
	for i := 0; i < k; i++ {
		denom := field.One()
		for j := 0; j < k; j++ {
			if j == i {
				continue
			}
			d := field.NewElement(uint64(absInt(i - j)))
			if j > i {
				d.Neg(&d)
			}
			denom.Mul(&denom, &d)
		}
		var term field.Element
		term.Inverse(&denom)
		term.Mul(&term, &prefix[i])
		term.Mul(&term, &suffix[i])
		term.Mul(&term, &ys[i])
		out.Add(&out, &term)
	}
	return out
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
