package gpusim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testSpec() DeviceSpec {
	return DeviceSpec{
		Name: "test", Cores: 1024, ClockGHz: 1.0,
		MemBandwidthGBs: 100, LinkGBs: 10, DeviceMemBytes: 1 << 30,
		KernelLaunchNs: 1000, SIMDWidth: 32,
	}
}

// merkleStages builds a synthetic layer-per-stage workload: layer ℓ does
// n/2^ℓ hashes.
func merkleStages(n int, hashCycles float64) []Stage {
	var stages []Stage
	for l := 0; n>>l >= 1; l++ {
		stages = append(stages, Stage{
			Name:        "layer",
			WorkOps:     float64(n >> l),
			CyclesPerOp: hashCycles,
		})
	}
	return stages
}

func TestValidate(t *testing.T) {
	s := testSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero cores")
	}
	bad = s
	bad.LinkGBs = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero link bandwidth")
	}
	bad = s
	bad.DeviceMemBytes = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero memory")
	}
	bad = s
	bad.SIMDWidth = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero SIMD width")
	}
}

func TestRunValidation(t *testing.T) {
	spec := testSpec()
	stages := merkleStages(1024, 100)
	if _, err := RunPipelined(spec, nil, 10, Options{}); err == nil {
		t.Fatal("accepted empty stages")
	}
	if _, err := RunPipelined(spec, stages, 0, Options{}); err == nil {
		t.Fatal("accepted zero tasks")
	}
	if _, err := RunNaive(spec, stages, 10, 0, Options{}); err == nil {
		t.Fatal("accepted zero thread reservation")
	}
	zero := []Stage{{Name: "idle", WorkOps: 0, CyclesPerOp: 1}}
	if _, err := RunPipelined(spec, zero, 1, Options{}); err == nil {
		t.Fatal("accepted zero-work pipeline")
	}
	bad := spec
	bad.ClockGHz = 0
	if _, err := RunPipelined(bad, stages, 1, Options{}); err == nil {
		t.Fatal("accepted invalid spec")
	}
	if _, err := RunNaive(bad, stages, 1, 32, Options{}); err == nil {
		t.Fatal("naive accepted invalid spec")
	}
}

func TestPipelinedSteadyState(t *testing.T) {
	spec := testSpec()
	n := 4096
	stages := merkleStages(n, 100)
	rep, err := RunPipelined(spec, stages, 1000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Total work per task = 2n−1 hashes × 100 cycles; with 1024 cores at
	// 1 GHz the ideal cycle is ≈ work/(cores·clock); warp rounding and the
	// serial tail cost a bit more.
	ideal := float64(2*n-1) * 100 / (1024 * 1.0)
	if rep.CycleNs < ideal {
		t.Fatalf("cycle %.1f beats the ideal %.1f", rep.CycleNs, ideal)
	}
	if rep.CycleNs > 4*ideal {
		t.Fatalf("cycle %.1f far above ideal %.1f", rep.CycleNs, ideal)
	}
	// Latency = depth × cycle.
	if want := rep.CycleNs * float64(len(stages)); math.Abs(rep.LatencyNs-want) > 1e-6 {
		t.Fatalf("latency %v, want %v", rep.LatencyNs, want)
	}
	// Throughput ≈ 1/cycle for many tasks.
	if rep.TotalNs <= 0 || rep.ThroughputPerMs() <= 0 {
		t.Fatal("degenerate totals")
	}
	perTask := rep.TotalNs / 1000
	if perTask > rep.CycleNs*1.1 {
		t.Fatalf("amortized %v should approach cycle %v", perTask, rep.CycleNs)
	}
}

func TestPipelinedBeatsNaiveOnSmallTasks(t *testing.T) {
	// The paper's headline: for trees much smaller than the device, the
	// pipelined scheme wins big because the naive scheme idles reserved
	// threads geometrically.
	spec := testSpec()
	n := 4096 // each task reserves n threads in the naive scheme
	stages := merkleStages(n, 2500)
	tasks := 512
	pipe, err := RunPipelined(spec, stages, tasks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := RunNaive(spec, stages, tasks, n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if naive.TotalNs <= pipe.TotalNs {
		t.Fatalf("naive (%.0f ns) should be slower than pipelined (%.0f ns)", naive.TotalNs, pipe.TotalNs)
	}
	speedup := naive.TotalNs / pipe.TotalNs
	if speedup < 1.5 {
		t.Fatalf("speedup %.2f× too small for the small-task regime", speedup)
	}
	// Latency trade-off (paper Table 6): the pipelined scheme has HIGHER
	// per-task latency.
	if pipe.LatencyNs <= naive.LatencyNs {
		t.Fatalf("pipelined latency %.0f should exceed naive %.0f", pipe.LatencyNs, naive.LatencyNs)
	}
}

func TestSpeedupGrowsAsTasksShrink(t *testing.T) {
	// Table 3's trend: the smaller the tree, the larger the pipelined
	// advantage.
	spec := testSpec()
	speedup := func(n int) float64 {
		stages := merkleStages(n, 100)
		pipe, err := RunPipelined(spec, stages, 256, Options{})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := RunNaive(spec, stages, 256, minInt(n, spec.Cores), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return naive.TotalNs / pipe.TotalNs
	}
	small, large := speedup(128), speedup(8192)
	if small <= large {
		t.Fatalf("speedup should grow as tasks shrink: small=%.2f large=%.2f", small, large)
	}
}

func TestOverlapHidesTransfers(t *testing.T) {
	spec := testSpec()
	stages := merkleStages(1024, 100)
	stages[0].HostBytesIn = 1024 // dynamic loading, smaller than compute
	noOverlap, err := RunPipelined(spec, stages, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := RunPipelined(spec, stages, 100, Options{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if overlap.CycleNs >= noOverlap.CycleNs {
		t.Fatal("overlap did not reduce the cycle time")
	}
	// With compute > transfer, the overlapped cycle equals pure compute
	// (paper Table 9: "no time is lost waiting for data transfer").
	if math.Abs(overlap.CycleNs-overlap.ComputeNsPerTask) > 1e-9 {
		t.Fatalf("overlapped cycle %.1f != compute %.1f", overlap.CycleNs, overlap.ComputeNsPerTask)
	}
	if !overlap.Overlapped || noOverlap.Overlapped {
		t.Fatal("Overlapped flag wrong")
	}
	// Transfer-bound case: huge input, tiny compute.
	heavy := []Stage{{Name: "x", WorkOps: 10, CyclesPerOp: 1, HostBytesIn: 1 << 20}}
	rep, err := RunPipelined(spec, heavy, 10, Options{Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.CycleNs-rep.TransferNsPerTask) > 1e-9 {
		t.Fatal("transfer-bound cycle should equal transfer time")
	}
}

func TestMemoryRoofline(t *testing.T) {
	spec := testSpec() // 100 GB/s
	// A stage touching lots of memory with trivial compute must be
	// bandwidth-bound: 1 MB at 100 GB/s = 10486 ns.
	stages := []Stage{{Name: "scan", WorkOps: 100, CyclesPerOp: 1, MemBytes: 1 << 20}}
	rep, err := RunPipelined(spec, stages, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(1<<20) / 100
	if math.Abs(rep.CycleNs-want) > 1 {
		t.Fatalf("bandwidth-bound cycle %.1f, want %.1f", rep.CycleNs, want)
	}
}

func TestDeviceMemoryAccounting(t *testing.T) {
	spec := testSpec() // 1 GiB
	stages := merkleStages(1024, 100)

	// Pipelined: holds ~one task's footprint.
	rep, err := RunPipelined(spec, stages, 100, Options{TaskBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakDeviceBytes != 1<<20 {
		t.Fatalf("pipelined peak = %d", rep.PeakDeviceBytes)
	}
	// Naive with K concurrent tasks: K × footprint.
	nrep, err := RunNaive(spec, stages, 100, 64, Options{TaskBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if nrep.PeakDeviceBytes <= rep.PeakDeviceBytes {
		t.Fatalf("naive peak %d should exceed pipelined %d (paper Table 10)",
			nrep.PeakDeviceBytes, rep.PeakDeviceBytes)
	}
	// OOM paths.
	if _, err := RunPipelined(spec, stages, 10, Options{TaskBytes: 2 << 30}); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("pipelined OOM not detected: %v", err)
	}
	if _, err := RunNaive(spec, stages, 100, 64, Options{TaskBytes: 1 << 28}); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("naive OOM not detected: %v", err)
	}
}

func TestUtilizationTraces(t *testing.T) {
	spec := testSpec()
	stages := merkleStages(1024, 100)
	pipe, err := RunPipelined(spec, stages, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pipe.Trace) == 0 {
		t.Fatal("no pipelined trace")
	}
	// Steady-state utilization must be high; ramp-up lower.
	mid := pipe.Trace[len(pipe.Trace)/2].Util
	first := pipe.Trace[0].Util
	if mid < 0.5 {
		t.Fatalf("steady-state utilization %.2f too low", mid)
	}
	if first >= mid {
		t.Fatalf("ramp-up %.2f should be below steady state %.2f", first, mid)
	}

	naive, err := RunNaive(spec, stages, 64, 1024, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(naive.Trace) == 0 {
		t.Fatal("no naive trace")
	}
	// Naive utilization decays within a wave (Figure 9's drop).
	if naive.Trace[0].Util <= naive.Trace[len(naive.Trace)-1].Util {
		t.Log("warning: naive trace did not strictly decay; checking average instead")
	}
	avg := 0.0
	for _, s := range naive.Trace {
		avg += s.Util
	}
	avg /= float64(len(naive.Trace))
	if avg >= mid {
		t.Fatalf("naive average utilization %.2f should be below pipelined steady state %.2f", avg, mid)
	}

	// Trace disabled.
	off, _ := RunPipelined(spec, stages, 64, Options{TraceCap: -1})
	if len(off.Trace) != 0 {
		t.Fatal("trace not disabled")
	}
}

func TestWarpRounding(t *testing.T) {
	if got := warpRound(100, 32); got != 96 {
		t.Fatalf("warpRound(100) = %v", got)
	}
	if got := warpRound(5, 32); got != 32 {
		t.Fatalf("warpRound(5) = %v (minimum one warp)", got)
	}
	if got := warpRound(0.3, 1); got != 1 {
		t.Fatalf("warpRound CPU min = %v", got)
	}
	if got := warpRound(7.5, 1); got != 7.5 {
		t.Fatalf("warpRound CPU passthrough = %v", got)
	}
}

func TestWarpImbalancePenalty(t *testing.T) {
	spec := testSpec()
	balanced := []Stage{{Name: "spmv", WorkOps: 1 << 16, CyclesPerOp: 10}}
	skewed := []Stage{{Name: "spmv", WorkOps: 1 << 16, CyclesPerOp: 10, WarpImbalance: 1.8}}
	b, _ := RunPipelined(spec, balanced, 32, Options{})
	s, _ := RunPipelined(spec, skewed, 32, Options{})
	ratio := s.CycleNs / b.CycleNs
	if math.Abs(ratio-1.8) > 0.2 {
		t.Fatalf("imbalance penalty ratio %.2f, want ≈1.8", ratio)
	}
}

func TestSerialTailLimitsParallelism(t *testing.T) {
	spec := testSpec()
	// A stage with 1e6 ops but only 2 independent lanes must take
	// ~work/2 regardless of core count.
	stages := []Stage{{Name: "serial", WorkOps: 1e6, CyclesPerOp: 1, ParallelOps: 2}}
	rep, err := RunPipelined(spec, stages, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1e6 / 2.0
	if math.Abs(rep.CycleNs-want) > want*0.01 {
		t.Fatalf("serial-tail cycle %.0f, want %.0f", rep.CycleNs, want)
	}
}

func TestPropertyConservationLaws(t *testing.T) {
	// For random stage configurations, the simulator must satisfy:
	//  - utilization samples stay in [0, 1];
	//  - the pipelined cycle is never below the work lower bound
	//    totalCycles/(cores·clock);
	//  - the naive total is never below the pipelined ideal (thread
	//    reservation cannot create work out of thin air);
	//  - memory high-water stays within capacity when the run succeeds.
	spec := testSpec()
	f := func(seed int64, nStages, workScale uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nStages)%6 + 1
		stages := make([]Stage, n)
		totalCycles := 0.0
		for i := range stages {
			w := float64(r.Intn(int(workScale)+2)*100 + 50)
			stages[i] = Stage{Name: "s", WorkOps: w, CyclesPerOp: float64(r.Intn(50) + 1)}
			totalCycles += stages[i].totalWorkCycles()
		}
		tasks := r.Intn(30) + 1
		pipe, err := RunPipelined(spec, stages, tasks, Options{TaskBytes: 1 << 10})
		if err != nil {
			return false
		}
		ideal := totalCycles / (float64(spec.Cores) * spec.ClockGHz)
		if pipe.CycleNs < ideal*0.999 {
			return false
		}
		for _, s := range pipe.Trace {
			if s.Util < 0 || s.Util > 1 {
				return false
			}
		}
		if pipe.PeakDeviceBytes > spec.DeviceMemBytes {
			return false
		}
		naive, err := RunNaive(spec, stages, tasks, r.Intn(spec.Cores)+1, Options{TaskBytes: 1 << 10})
		if err != nil {
			return false
		}
		if naive.TotalNs < ideal*float64(tasks)*0.999 {
			return false
		}
		for _, s := range naive.Trace {
			if s.Util < 0 || s.Util > 1 {
				return false
			}
		}
		return naive.PeakDeviceBytes <= spec.DeviceMemBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
