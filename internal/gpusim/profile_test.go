package gpusim

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// profilePair runs the same workload both ways and profiles each.
func profilePair(t *testing.T, tasks int) (*Profile, *Profile) {
	t.Helper()
	spec := testSpec()
	stages := merkleStages(1<<14, 100)
	pipe, err := RunPipelined(spec, stages, tasks, Options{Overlap: true, TaskBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := RunNaive(spec, stages, tasks, 1<<14, Options{TaskBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := BuildProfile(pipe)
	if err != nil {
		t.Fatal(err)
	}
	np, err := BuildProfile(naive)
	if err != nil {
		t.Fatal(err)
	}
	return pp, np
}

func TestStageRecordsPopulated(t *testing.T) {
	spec := testSpec()
	stages := merkleStages(1<<10, 100)
	rep, err := RunPipelined(spec, stages, 64, Options{TaskBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != len(stages) {
		t.Fatalf("got %d stage records for %d stages", len(rep.Stages), len(stages))
	}
	if rep.Device != spec.Name || rep.Cores != spec.Cores {
		t.Fatalf("device identity missing: %q/%d", rep.Device, rep.Cores)
	}
	for i, sr := range rep.Stages {
		if sr.Name != stages[i].Name {
			t.Fatalf("record %d name %q != stage %q", i, sr.Name, stages[i].Name)
		}
		if sr.ShareCores < 1 || sr.ActiveNs <= 0 {
			t.Fatalf("record %d degenerate: %+v", i, sr)
		}
		if sr.ActiveNs < math.Max(sr.ComputeNs, sr.MemNs) {
			t.Fatalf("record %d active < max(compute, mem): %+v", i, sr)
		}
		if sr.WarpOccupancy <= 0 || sr.WarpOccupancy > 1 {
			t.Fatalf("record %d occupancy %f out of (0,1]", i, sr.WarpOccupancy)
		}
	}
}

func TestProfileUtilizationAccounting(t *testing.T) {
	pp, np := profilePair(t, 256)
	for _, p := range []*Profile{pp, np} {
		u := p.Util
		for name, v := range map[string]float64{
			"busy": u.Busy, "compute": u.Compute, "mem_stall": u.MemStall,
			"launch": u.Launch, "starved": u.Starved, "idle": u.Idle,
			"transfer": u.TransferBlocked,
		} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("%s: %s fraction %f out of [0,1]", p.Scheme, name, v)
			}
		}
		// Compute + MemStall + Launch + Starved partitions Busy.
		sum := u.Compute + u.MemStall + u.Launch + u.Starved
		if diff := math.Abs(sum - u.Busy); diff > 0.02 {
			t.Fatalf("%s: busy split %.4f != busy %.4f", p.Scheme, sum, u.Busy)
		}
		if diff := math.Abs(u.Busy + u.Idle - 1); diff > 1e-9 {
			t.Fatalf("%s: busy+idle != 1", p.Scheme)
		}
		if len(p.Stages) == 0 || p.Bottleneck == "" || p.Verdict == "" {
			t.Fatalf("%s: incomplete profile: %+v", p.Scheme, p)
		}
	}
}

func TestProfileFigure9Contrast(t *testing.T) {
	pp, np := profilePair(t, 256)
	// The paper's Figure 9 claim: pipelining lifts device occupancy from
	// idle-dominated to busy-dominated. The naive scheme's reduction
	// stages idle most lanes, so the pipelined scheme must be at least
	// 2x busier and faster.
	if pp.Util.Busy < 2*np.Util.Busy {
		t.Fatalf("pipelined busy %.3f < 2x naive busy %.3f", pp.Util.Busy, np.Util.Busy)
	}
	if pp.ThroughputPerMs < 2*np.ThroughputPerMs {
		t.Fatalf("pipelined throughput %.3f < 2x naive %.3f", pp.ThroughputPerMs, np.ThroughputPerMs)
	}
	if np.Verdict != VerdictStarved {
		t.Fatalf("naive verdict %q, want %q (idle-dominated)", np.Verdict, VerdictStarved)
	}

	c, err := NewContrast(pp, np)
	if err != nil {
		t.Fatal(err)
	}
	if c.BusyGainX < 2 || c.ThroughputGainX < 2 {
		t.Fatalf("contrast gains too small: busy %.2fx thr %.2fx", c.BusyGainX, c.ThroughputGainX)
	}
}

func TestProfileTransferVerdict(t *testing.T) {
	spec := testSpec()
	spec.LinkGBs = 0.001 // strangle the host link
	stages := []Stage{{Name: "k", WorkOps: 1 << 10, CyclesPerOp: 10, HostBytesIn: 1 << 20}}
	rep, err := RunPipelined(spec, stages, 32, Options{Overlap: true, TaskBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildProfile(rep)
	if err != nil {
		t.Fatal(err)
	}
	if p.Verdict != VerdictTransfer {
		t.Fatalf("verdict %q, want %q (transfer dominates the cycle)", p.Verdict, VerdictTransfer)
	}
	if p.Util.TransferBlocked < 0.5 {
		t.Fatalf("transfer-blocked %.3f, want > 0.5", p.Util.TransferBlocked)
	}
}

func TestProfileMemoryVerdict(t *testing.T) {
	spec := testSpec()
	// One stage far over the bandwidth roofline.
	stages := []Stage{{Name: "k", WorkOps: 1 << 8, CyclesPerOp: 1, MemBytes: 1 << 26}}
	rep, err := RunPipelined(spec, stages, 32, Options{TaskBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildProfile(rep)
	if err != nil {
		t.Fatal(err)
	}
	if p.Verdict != VerdictMemory {
		t.Fatalf("verdict %q, want %q", p.Verdict, VerdictMemory)
	}
	if p.Stages[0].Verdict != VerdictMemory {
		t.Fatalf("stage verdict %q, want %q", p.Stages[0].Verdict, VerdictMemory)
	}
}

func TestProfileRejectsBareReport(t *testing.T) {
	if _, err := BuildProfile(nil); err == nil {
		t.Fatal("nil report accepted")
	}
	if _, err := BuildProfile(&Report{Scheme: "pipelined"}); err == nil {
		t.Fatal("report without stage records accepted")
	}
}

func TestProfileRenderers(t *testing.T) {
	pp, np := profilePair(t, 64)
	c, err := NewContrast(pp, np)
	if err != nil {
		t.Fatal(err)
	}

	var txt bytes.Buffer
	c.Render(&txt)
	for _, want := range []string{"pipelined", "naive", "verdict:", "busier", "lane-time"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text render missing %q:\n%s", want, txt.String())
		}
	}

	var js bytes.Buffer
	if err := c.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Contrast
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("contrast JSON does not round-trip: %v", err)
	}
	if back.Pipelined.Scheme != "pipelined" || back.Naive.Scheme != "naive" {
		t.Fatalf("round-trip lost schemes: %+v", back)
	}
	if math.Abs(back.BusyGainX-c.BusyGainX) > 1e-9 {
		t.Fatalf("round-trip lost gains")
	}
}
