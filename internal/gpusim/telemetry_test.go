package gpusim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"batchzk/internal/telemetry"
)

// TestNaiveTraceDecimationKeepsTail exercises the TraceCap semantics:
// a run with far more rounds than the cap must still have samples from
// the end of the run (stride decimation), not stop at the cap mid-run.
func TestNaiveTraceDecimationKeepsTail(t *testing.T) {
	spec := testSpec()
	stages := merkleStages(256, 100)
	// 4096 tasks in waves of k = cores/threadsPerTask = 1024/512 = 2
	// → 2048 waves × 9 rounds, far beyond a 64-sample cap.
	rep, err := RunNaive(spec, stages, 4096, 512, Options{TraceCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace) == 0 || len(rep.Trace) > 64 {
		t.Fatalf("trace has %d samples for cap 64", len(rep.Trace))
	}
	last := rep.Trace[len(rep.Trace)-1].TimeNs
	if last < rep.TotalNs*0.9 {
		t.Fatalf("trace stops at %.0f of %.0f ns — tail not represented", last, rep.TotalNs)
	}
	// Pipelined runs obey the cap under decimation too.
	pipe, err := RunPipelined(spec, stages, 4096, Options{TraceCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(pipe.Trace) == 0 || len(pipe.Trace) > 64 {
		t.Fatalf("pipelined trace has %d samples for cap 64", len(pipe.Trace))
	}
	lastP := pipe.Trace[len(pipe.Trace)-1].TimeNs
	if lastP < pipe.TotalNs*0.9 {
		t.Fatalf("pipelined trace stops at %.0f of %.0f ns", lastP, pipe.TotalNs)
	}
}

// traceEvent mirrors the Chrome trace_event fields the assertions need.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

func exportEvents(t *testing.T, tr *telemetry.Tracer) []traceEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("export is not valid trace_event JSON: %v", err)
	}
	return trace.TraceEvents
}

func kernelEvents(events []traceEvent) []traceEvent {
	var out []traceEvent
	for _, e := range events {
		if e.Phase == "X" && strings.HasPrefix(e.Name, "kernel/") {
			out = append(out, e)
		}
	}
	return out
}

// strictOverlap reports whether two half-open intervals intersect, with
// a picosecond tolerance for the ns→µs float conversion of the export.
func strictOverlap(a, b traceEvent) bool {
	const eps = 1e-6 // µs
	return a.TS < b.TS+b.Dur-eps && b.TS < a.TS+a.Dur-eps
}

// TestPipelinedSpansOverlapNaiveDoNot is the acceptance check of the
// telemetry layer: parsed from the Chrome export, a pipelined run shows
// at least two different stages busy at the same simulated instant (the
// paper's full-workload state), while the naive baseline's barrier
// rounds never overlap. It also checks parent/child nesting.
func TestPipelinedSpansOverlapNaiveDoNot(t *testing.T) {
	spec := testSpec()
	stages := merkleStages(1024, 100)

	pipeSink := telemetry.NewSink(4096)
	if _, err := RunPipelined(spec, stages, 16, Options{Telemetry: pipeSink}); err != nil {
		t.Fatal(err)
	}
	naiveSink := telemetry.NewSink(4096)
	if _, err := RunNaive(spec, stages, 16, 512, Options{Telemetry: naiveSink}); err != nil {
		t.Fatal(err)
	}

	pipeEvents := exportEvents(t, pipeSink.Tracer)
	naiveEvents := exportEvents(t, naiveSink.Tracer)
	assertNested(t, pipeEvents)
	assertNested(t, naiveEvents)

	// Pipelined: ≥ 2 stage kernels (distinct lanes) overlap in time.
	pk := kernelEvents(pipeEvents)
	if len(pk) == 0 {
		t.Fatal("pipelined run emitted no kernel spans")
	}
	overlapping := false
	for i := 0; i < len(pk) && !overlapping; i++ {
		for j := i + 1; j < len(pk); j++ {
			if pk[i].TID != pk[j].TID && strictOverlap(pk[i], pk[j]) {
				overlapping = true
				break
			}
		}
	}
	if !overlapping {
		t.Fatal("pipelined run shows no overlapping stages")
	}

	// Naive: barrier rounds — no two kernel spans may overlap at all.
	nk := kernelEvents(naiveEvents)
	if len(nk) == 0 {
		t.Fatal("naive run emitted no kernel spans")
	}
	for i := 0; i < len(nk); i++ {
		for j := i + 1; j < len(nk); j++ {
			if strictOverlap(nk[i], nk[j]) {
				t.Fatalf("naive kernels overlap: %q [%.3f,%.3f) and %q [%.3f,%.3f)",
					nk[i].Name, nk[i].TS, nk[i].TS+nk[i].Dur,
					nk[j].Name, nk[j].TS, nk[j].TS+nk[j].Dur)
			}
		}
	}
}

// assertNested verifies every span with a parent lies within the parent's
// time interval.
func assertNested(t *testing.T, events []traceEvent) {
	t.Helper()
	byID := map[float64]traceEvent{}
	for _, e := range events {
		if e.Phase != "X" {
			continue
		}
		if id, ok := e.Args["id"].(float64); ok {
			byID[id] = e
		}
	}
	const eps = 1e-3 // µs tolerance for float accumulation
	nested := 0
	for _, e := range events {
		if e.Phase != "X" {
			continue
		}
		pid, ok := e.Args["parent"].(float64)
		if !ok {
			continue
		}
		parent, ok := byID[pid]
		if !ok {
			t.Fatalf("span %q links to unknown parent %v", e.Name, pid)
		}
		if e.TS < parent.TS-eps || e.TS+e.Dur > parent.TS+parent.Dur+eps {
			t.Fatalf("span %q [%.3f,%.3f) escapes parent %q [%.3f,%.3f)",
				e.Name, e.TS, e.TS+e.Dur, parent.Name, parent.TS, parent.TS+parent.Dur)
		}
		nested++
	}
	if nested == 0 {
		t.Fatal("no parent-linked spans to check")
	}
}

// TestRunTelemetryMetrics checks the metric side of a simulated run.
func TestRunTelemetryMetrics(t *testing.T) {
	spec := testSpec()
	stages := merkleStages(1024, 100)
	stages[0].HostBytesIn = 4096 // dynamic loading of the leaf blocks
	stages[len(stages)-1].HostBytesOut = 32
	sink := telemetry.NewSink(1024)
	rep, err := RunPipelined(spec, stages, 32, Options{Telemetry: sink, TaskBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	s := sink.Metrics.Snapshot()
	if s.Counters["gpusim/runs/pipelined"] != 1 {
		t.Fatalf("runs counter: %+v", s.Counters)
	}
	if s.Counters["gpusim/kernels/launched"] != int64(len(stages)) {
		t.Fatalf("kernel launches = %d, want %d", s.Counters["gpusim/kernels/launched"], len(stages))
	}
	if s.Counters["gpusim/host/bytes_in"] <= 0 {
		t.Fatal("no host bytes recorded")
	}
	if s.Gauges["gpusim/mem/peak_bytes"].Value != rep.PeakDeviceBytes {
		t.Fatal("peak memory gauge mismatch")
	}
	if s.Histograms["gpusim/stage/ns"].Count != int64(len(stages)) {
		t.Fatal("stage histogram not populated")
	}

	// The global sink is picked up when no explicit sink is given.
	gs := telemetry.NewSink(1024)
	telemetry.Enable(gs)
	defer telemetry.Enable(nil)
	if _, err := RunNaive(spec, stages, 4, 512, Options{}); err != nil {
		t.Fatal(err)
	}
	if gs.Metrics.Snapshot().Counters["gpusim/runs/naive"] != 1 {
		t.Fatal("global sink did not record the naive run")
	}
}
