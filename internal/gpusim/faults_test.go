package gpusim

import (
	"errors"
	"testing"

	"batchzk/internal/faults"
	"batchzk/internal/telemetry"
)

func faultTestSpec() DeviceSpec {
	return DeviceSpec{
		Name: "fault-test", Cores: 1024, ClockGHz: 1.0,
		MemBandwidthGBs: 100, LinkGBs: 10,
		DeviceMemBytes: 1 << 30, KernelLaunchNs: 1000, SIMDWidth: 32,
	}
}

func faultTestStages() []Stage {
	return []Stage{
		{Name: "encode", WorkOps: 4096, CyclesPerOp: 4, HostBytesIn: 4096},
		{Name: "hash", WorkOps: 2048, CyclesPerOp: 8},
		{Name: "open", WorkOps: 1024, CyclesPerOp: 4, HostBytesOut: 2048},
	}
}

// TestFaultFreeRunUnchanged: a configured injector with no enabled
// classes must not perturb the report at all.
func TestFaultFreeRunUnchanged(t *testing.T) {
	spec, stages := faultTestSpec(), faultTestStages()
	clean, err := RunPipelined(spec, stages, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(1) // no rates set: plan is empty
	faulty, err := RunPipelined(spec, stages, 64, Options{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if clean.TotalNs != faulty.TotalNs || faulty.Faults.Injected != 0 {
		t.Fatalf("empty plan perturbed the run: %v vs %v (faults %+v)",
			clean.TotalNs, faulty.TotalNs, faulty.Faults)
	}
}

// TestTransientFaultsStretchRun: retryable classes (kernel, transfer,
// straggler) slow the run down, deterministically, without failing it.
func TestTransientFaultsStretchRun(t *testing.T) {
	spec, stages := faultTestSpec(), faultTestStages()
	run := func() *Report {
		inj := faults.NewInjector(7)
		inj.SetRate(faults.KernelFault, 0.10)
		inj.SetRate(faults.TransferStall, 0.10)
		inj.SetRate(faults.Straggler, 0.10)
		rep, err := RunPipelined(spec, stages, 128, Options{Faults: inj})
		if err != nil {
			t.Fatal(err)
		}
		// Every drawn fault must be resolved in the ledger.
		if st := inj.Stats(); st.Pending != 0 || inj.Conflicts() != 0 {
			t.Fatalf("ledger not reconciled: %+v conflicts=%d", st, inj.Conflicts())
		}
		return rep
	}
	clean, err := RunPipelined(spec, stages, 128, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := run(), run()
	if a.Faults.Injected == 0 {
		t.Fatal("no faults injected at 10% rates over 128 tasks x 3 stages")
	}
	if a.TotalNs <= clean.TotalNs {
		t.Fatalf("faulty run not slower: %v <= %v", a.TotalNs, clean.TotalNs)
	}
	if a.TotalNs != b.TotalNs || a.Faults != b.Faults {
		t.Fatalf("same seed, different runs: %+v vs %+v", a.Faults, b.Faults)
	}
	if a.Faults.ExtraNs <= 0 || a.TotalNs != clean.TotalNs+a.Faults.ExtraNs {
		t.Fatalf("extra time not accounted: clean=%v faulty=%v extra=%v",
			clean.TotalNs, a.TotalNs, a.Faults.ExtraNs)
	}
}

// TestMemCorruptionAbortsWithAttribution: an uncorrectable ECC fault ends
// the run with a LaunchError that names the launch and chains to the
// class sentinel.
func TestMemCorruptionAbortsWithAttribution(t *testing.T) {
	spec, stages := faultTestSpec(), faultTestStages()
	inj := faults.NewInjector(3)
	inj.Force(faults.MemCorruption, "pipelined/hash#1", 5, 1)
	_, err := RunPipelined(spec, stages, 64, Options{Faults: inj})
	if err == nil {
		t.Fatal("corrupted run succeeded")
	}
	var le *LaunchError
	if !errors.As(err, &le) {
		t.Fatalf("error %v is not a LaunchError", err)
	}
	if le.Stage != "hash" || le.Task != 5 || le.Scheme != "pipelined" {
		t.Fatalf("bad attribution: %+v", le)
	}
	if !errors.Is(err, faults.ErrMemCorruption) {
		t.Fatal("chain does not reach ErrMemCorruption")
	}
	st := inj.Stats()
	if st.Quarantined != 1 || st.Pending != 0 {
		t.Fatalf("ledger: %+v", st)
	}
}

// TestPersistentKernelFaultExhaustsBudget: a kernel fault forced on every
// attempt of one launch exhausts the retry budget and aborts.
func TestPersistentKernelFaultExhaustsBudget(t *testing.T) {
	spec, stages := faultTestSpec(), faultTestStages()
	inj := faults.NewInjector(3)
	for attempt := 1; attempt <= launchRetryBudget; attempt++ {
		inj.Force(faults.KernelFault, "naive/encode#0", 2, attempt)
	}
	_, err := RunNaive(spec, stages, 16, 256, Options{Faults: inj})
	if err == nil {
		t.Fatal("persistent fault did not abort the run")
	}
	if !errors.Is(err, faults.ErrKernelFault) {
		t.Fatalf("chain does not reach ErrKernelFault: %v", err)
	}
	st := inj.Stats()
	if st.Quarantined != launchRetryBudget || st.Pending != 0 {
		t.Fatalf("ledger: %+v", st)
	}
}

// TestRecoveredKernelFaultRetries: a single transient kernel fault is
// retried and the run completes, paying the retry in time.
func TestRecoveredKernelFaultRetries(t *testing.T) {
	spec, stages := faultTestSpec(), faultTestStages()
	inj := faults.NewInjector(3)
	inj.Force(faults.KernelFault, "pipelined/encode#0", 0, 1)
	rep, err := RunPipelined(spec, stages, 16, Options{Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults.KernelRetries != 1 || rep.Faults.Injected != 1 {
		t.Fatalf("faults: %+v", rep.Faults)
	}
	st := inj.Stats()
	if st.Recovered != 1 {
		t.Fatalf("ledger: %+v", st)
	}
}

// TestFaultTelemetryCounters: the recovery actions surface in the sink's
// counters, matching the report's own accounting.
func TestFaultTelemetryCounters(t *testing.T) {
	spec, stages := faultTestSpec(), faultTestStages()
	inj := faults.NewInjector(4)
	inj.SetRate(faults.KernelFault, 0.15)
	inj.SetRate(faults.Straggler, 0.15)
	sink := telemetry.NewSink(0)
	rep, err := RunNaive(spec, stages, 64, 256, Options{Faults: inj, Telemetry: sink})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults.Injected == 0 {
		t.Fatal("no faults injected")
	}
	if got := sink.Counter("gpusim/faults/injected").Value(); got != int64(rep.Faults.Injected) {
		t.Fatalf("injected counter = %d, report says %d", got, rep.Faults.Injected)
	}
	if got := sink.Counter("gpusim/faults/kernel_retries").Value(); got != int64(rep.Faults.KernelRetries) {
		t.Fatalf("kernel_retries counter = %d, report says %d", got, rep.Faults.KernelRetries)
	}
	if got := sink.Counter("gpusim/faults/stragglers").Value(); got != int64(rep.Faults.Stragglers) {
		t.Fatalf("stragglers counter = %d, report says %d", got, rep.Faults.Stragglers)
	}
}
