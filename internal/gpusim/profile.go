// Profile post-processes a run's per-stage records into the attribution
// the paper's occupancy arguments are about: where every device lane's
// time went (useful compute, memory stalls, kernel-launch overhead,
// waiting on a slower stage, no resident work at all), how much of the
// run the device spent blocked on the host link, and a per-stage and
// whole-run "bottleneck verdict". Profiling a pipelined and a naive run
// of the same workload side by side (Contrast) is the quantitative form
// of the paper's Figure 9.
package gpusim

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Bottleneck verdicts attached to stages and whole runs.
const (
	VerdictCompute  = "compute-bound"
	VerdictMemory   = "memory-bandwidth-bound"
	VerdictTransfer = "pcie-transfer-bound"
	VerdictLaunch   = "launch-overhead-bound"
	VerdictStarved  = "starved"
)

// Utilization is the lane-time breakdown of one run. Compute, MemStall,
// Launch and Starved partition Busy; Idle = 1 − Busy is lane-time with
// no resident kernel at all (unallocated lanes, ramp-up/drain, barrier
// gaps). TransferBlocked is a *run-time* fraction — how long the device
// sat stalled on the host link — reported on its own axis because under
// multi-stream overlap it coexists with busy lanes.
type Utilization struct {
	Busy            float64 `json:"busy"`
	Compute         float64 `json:"compute"`
	MemStall        float64 `json:"mem_stall"`
	Launch          float64 `json:"launch"`
	Starved         float64 `json:"starved"`
	Idle            float64 `json:"idle"`
	TransferBlocked float64 `json:"transfer_blocked"`
}

// StageProfile is the attribution for one stage: per-task time split and
// the stage's share of the whole run's lane-time.
type StageProfile struct {
	Name       string  `json:"name"`
	ShareCores float64 `json:"share_cores"`
	// Per-task time split (ns): ComputeNs + MemStallNs + LaunchNs +
	// StarvedNs = PeriodNs, the steady-state interval between tasks.
	ComputeNs  float64 `json:"compute_ns"`
	MemStallNs float64 `json:"mem_stall_ns"`
	LaunchNs   float64 `json:"launch_ns"`
	StarvedNs  float64 `json:"starved_ns"`
	// BusyFrac is this stage's lanes' contribution to device busy time.
	BusyFrac float64 `json:"busy_frac"`
	// WarpOccupancy: useful fraction of the occupied lane-cycles.
	WarpOccupancy float64 `json:"warp_occupancy"`
	Verdict       string  `json:"verdict"`
}

// Profile is the post-processed attribution of one simulated run.
type Profile struct {
	Scheme string `json:"scheme"`
	Device string `json:"device"`
	Cores  int    `json:"cores"`
	Tasks  int    `json:"tasks"`
	// Concurrency is the tasks in flight at steady state: the pipeline
	// depth, or the naive wave width K.
	Concurrency int `json:"concurrency"`
	// PeriodNs is the steady-state interval between task completions:
	// the pipeline cycle, or wave latency / wave width for naive runs.
	PeriodNs        float64        `json:"period_ns"`
	ThroughputPerMs float64        `json:"throughput_per_ms"`
	LatencyNs       float64        `json:"latency_ns"`
	TotalNs         float64        `json:"total_ns"`
	PeakDeviceBytes int64          `json:"peak_device_bytes"`
	Util            Utilization    `json:"utilization"`
	Stages          []StageProfile `json:"stages"`
	// Bottleneck names the stage that limits throughput; Verdict says
	// what kind of limit it is for the run as a whole.
	Bottleneck string `json:"bottleneck"`
	Verdict    string `json:"verdict"`
}

// BuildProfile attributes a run's lane-time from its stage records.
// Reports produced before stage recording existed (no Stages) are
// rejected rather than silently profiled as idle.
func BuildProfile(rep *Report) (*Profile, error) {
	if rep == nil {
		return nil, fmt.Errorf("gpusim: nil report")
	}
	if len(rep.Stages) == 0 {
		return nil, fmt.Errorf("gpusim: report carries no stage records to profile")
	}
	if rep.Cores <= 0 || rep.TotalNs <= 0 {
		return nil, fmt.Errorf("gpusim: report missing device/cores/total time")
	}
	p := &Profile{
		Scheme:          rep.Scheme,
		Device:          rep.Device,
		Cores:           rep.Cores,
		Tasks:           rep.Tasks,
		Concurrency:     rep.Concurrency,
		ThroughputPerMs: rep.ThroughputPerMs(),
		LatencyNs:       rep.LatencyNs,
		TotalNs:         rep.TotalNs,
		PeakDeviceBytes: rep.PeakDeviceBytes,
	}

	// The steady-state interval one task holds a stage: the pipeline
	// cycle, or the full barrier-round sequence of one naive wave.
	period := rep.CycleNs
	if rep.Scheme == "naive" {
		period = rep.LatencyNs
	}
	if period <= 0 {
		return nil, fmt.Errorf("gpusim: report has no steady-state period")
	}
	p.PeriodNs = period

	// Device-level PCIe stall: with overlap the transfer only blocks when
	// it outlasts compute (the cycle stretches); without, it serializes.
	transferBlock := rep.TransferNsPerTask
	if rep.Overlapped {
		transferBlock = math.Max(0, rep.CycleNs-rep.ComputeNsPerTask)
	}
	p.Util.TransferBlocked = transferBlock / period

	totalLaneNs := float64(rep.Cores) * rep.TotalNs
	tasks := float64(rep.Tasks)
	var busy, compute, memStall, launch float64
	bottleneck := 0
	for i, sr := range rep.Stages {
		// Lane-time attribution: each of the Tasks tasks occupies the
		// stage's ShareCores lanes for one period (pipelined: the whole
		// cycle, occupancy semantics) or for its ActiveNs round (naive:
		// the lanes are released at the barrier).
		occupiedNs := period
		if rep.Scheme == "naive" {
			occupiedNs = sr.ActiveNs
		}
		laneNs := sr.ShareCores * tasks
		busy += laneNs * occupiedNs
		compute += laneNs * sr.ComputeNs
		stall := math.Max(0, sr.ActiveNs-sr.LaunchNs-sr.ComputeNs)
		memStall += laneNs * stall
		launch += laneNs * sr.LaunchNs

		starved := math.Max(0, occupiedNs-sr.ActiveNs)
		sp := StageProfile{
			Name:          sr.Name,
			ShareCores:    sr.ShareCores,
			ComputeNs:     sr.ComputeNs,
			MemStallNs:    stall,
			LaunchNs:      sr.LaunchNs,
			StarvedNs:     starved,
			BusyFrac:      laneNs * occupiedNs / totalLaneNs,
			WarpOccupancy: sr.WarpOccupancy,
		}
		sp.Verdict = stageVerdict(sr.ComputeNs, stall, sr.LaunchNs, starved)
		p.Stages = append(p.Stages, sp)
		if sr.ActiveNs > rep.Stages[bottleneck].ActiveNs {
			bottleneck = i
		}
	}
	p.Util.Busy = math.Min(1, busy/totalLaneNs)
	p.Util.Compute = compute / totalLaneNs
	p.Util.MemStall = memStall / totalLaneNs
	p.Util.Launch = launch / totalLaneNs
	p.Util.Starved = math.Max(0, p.Util.Busy-p.Util.Compute-p.Util.MemStall-p.Util.Launch)
	p.Util.Idle = math.Max(0, 1-p.Util.Busy)

	p.Bottleneck = rep.Stages[bottleneck].Name
	p.Verdict = runVerdict(p, rep.Stages[bottleneck])
	return p, nil
}

// stageVerdict picks the dominant component of a stage's per-task time.
func stageVerdict(compute, memStall, launch, starved float64) string {
	v, max := VerdictCompute, compute
	for _, cand := range []struct {
		verdict string
		ns      float64
	}{
		{VerdictMemory, memStall},
		{VerdictLaunch, launch},
		{VerdictStarved, starved},
	} {
		if cand.ns > max {
			v, max = cand.verdict, cand.ns
		}
	}
	return v
}

// runVerdict classifies the whole run. A PCIe-dominated period trumps
// everything. Next comes the bottleneck stage's own character — if the
// throughput-limiting stage is stalled on memory bandwidth or launch
// overhead, idle lanes elsewhere are a consequence, not the cause.
// Only a compute-bound bottleneck on an idle-dominated device means the
// scheduling itself starves the lanes (the naive scheme's signature).
func runVerdict(p *Profile, bottleneck StageRecord) string {
	if p.Util.TransferBlocked > 0.5 {
		return VerdictTransfer
	}
	stall := math.Max(0, bottleneck.ActiveNs-bottleneck.LaunchNs-bottleneck.ComputeNs)
	if stall > bottleneck.ComputeNs && stall > bottleneck.LaunchNs {
		return VerdictMemory
	}
	if bottleneck.LaunchNs > bottleneck.ComputeNs {
		return VerdictLaunch
	}
	if p.Util.Idle > p.Util.Busy {
		return VerdictStarved
	}
	return VerdictCompute
}

// WriteJSON renders the profile as indented JSON.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

func pct(v float64) string { return fmt.Sprintf("%5.1f%%", v*100) }

// Render writes the profile as an aligned plain-text report: the run
// summary, the lane-time breakdown, and the per-stage attribution with
// verdicts (stages aggregated by name to keep deep pipelines readable).
func (p *Profile) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s on %s: %d tasks, %.3f tasks/ms ===\n",
		p.Scheme, p.Device, p.Tasks, p.ThroughputPerMs)
	fmt.Fprintf(w, "  period %.3f ms   latency %.3f ms   total %.3f ms   peak mem %.2f GiB\n",
		p.PeriodNs/1e6, p.LatencyNs/1e6, p.TotalNs/1e6,
		float64(p.PeakDeviceBytes)/(1<<30))
	u := p.Util
	fmt.Fprintf(w, "  lane-time: busy %s  (compute %s, mem-stall %s, launch %s, starved %s)  idle %s\n",
		pct(u.Busy), pct(u.Compute), pct(u.MemStall), pct(u.Launch), pct(u.Starved), pct(u.Idle))
	fmt.Fprintf(w, "  pcie-blocked %s of run time\n", pct(u.TransferBlocked))
	fmt.Fprintf(w, "  verdict: %s (bottleneck stage: %s)\n", p.Verdict, p.Bottleneck)

	type agg struct {
		name                                   string
		count                                  int
		share, compute, stall, launch, starved float64
		busy, occupancy                        float64
		verdicts                               map[string]int
	}
	byName := map[string]*agg{}
	var order []string
	for _, sp := range p.Stages {
		a := byName[sp.Name]
		if a == nil {
			a = &agg{name: sp.Name, verdicts: map[string]int{}}
			byName[sp.Name] = a
			order = append(order, sp.Name)
		}
		a.count++
		a.share += sp.ShareCores
		a.compute += sp.ComputeNs
		a.stall += sp.MemStallNs
		a.launch += sp.LaunchNs
		a.starved += sp.StarvedNs
		a.busy += sp.BusyFrac
		a.occupancy += sp.WarpOccupancy
		a.verdicts[sp.Verdict]++
	}
	fmt.Fprintf(w, "  %-24s %6s %9s %11s %11s %11s %9s %6s  %s\n",
		"stage", "kerns", "lanes", "compute", "mem-stall", "starved", "busy", "occ", "verdict")
	for _, name := range order {
		a := byName[name]
		fmt.Fprintf(w, "  %-24s %6d %9.0f %10.2fus %10.2fus %10.2fus %8.1f%% %5.0f%%  %s\n",
			a.name, a.count, a.share,
			a.compute/1e3, a.stall/1e3, a.starved/1e3,
			a.busy*100, a.occupancy/float64(a.count)*100,
			dominantVerdict(a.verdicts))
	}
}

// dominantVerdict returns the most common verdict of an aggregate,
// ties broken by severity order (deterministic output).
func dominantVerdict(votes map[string]int) string {
	keys := make([]string, 0, len(votes))
	for k := range votes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	best, n := "", -1
	for _, k := range keys {
		if votes[k] > n {
			best, n = k, votes[k]
		}
	}
	return best
}

// Contrast is the side-by-side profile of the same workload under the
// pipelined and naive schemes — the paper's Figure 9 as numbers.
type Contrast struct {
	Pipelined *Profile `json:"pipelined"`
	Naive     *Profile `json:"naive"`
	// BusyGainX is pipelined busy fraction / naive busy fraction.
	BusyGainX float64 `json:"busy_gain_x"`
	// ThroughputGainX is pipelined throughput / naive throughput.
	ThroughputGainX float64 `json:"throughput_gain_x"`
}

// NewContrast pairs two profiles of the same workload.
func NewContrast(pipelined, naive *Profile) (*Contrast, error) {
	if pipelined == nil || naive == nil {
		return nil, fmt.Errorf("gpusim: contrast needs both profiles")
	}
	c := &Contrast{Pipelined: pipelined, Naive: naive}
	if naive.Util.Busy > 0 {
		c.BusyGainX = pipelined.Util.Busy / naive.Util.Busy
	}
	if naive.ThroughputPerMs > 0 {
		c.ThroughputGainX = pipelined.ThroughputPerMs / naive.ThroughputPerMs
	}
	return c, nil
}

// Render writes both profiles and the headline gains.
func (c *Contrast) Render(w io.Writer) {
	c.Pipelined.Render(w)
	fmt.Fprintln(w)
	c.Naive.Render(w)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "pipelining keeps lanes %s vs %s busy: %.2fx busier, %.2fx the throughput\n",
		strings.TrimSpace(pct(c.Pipelined.Util.Busy)),
		strings.TrimSpace(pct(c.Naive.Util.Busy)),
		c.BusyGainX, c.ThroughputGainX)
}

// WriteJSON renders the contrast as indented JSON.
func (c *Contrast) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
