package gpusim

import (
	"fmt"
	"log/slog"

	"batchzk/internal/obs"
)

// ShardReport summarizes a sharded run: one batch split across several
// simulated devices, each running the full stage-per-kernel pipeline
// independently over its slice of the tasks.
type ShardReport struct {
	Shards int
	Tasks  int
	// PerShard holds each simulated device's full report, in shard order
	// (the merge order — shard i proves jobs i, i+S, i+2S, …).
	PerShard []*Report
	// TotalNs is the batch wall time: the slowest shard, since the
	// devices run concurrently.
	TotalNs float64
	// PeakDeviceBytes is the largest per-device memory high-water mark —
	// the budget every device must individually satisfy.
	PeakDeviceBytes int64
}

// ThroughputPerMs returns aggregate completed tasks per millisecond.
func (r *ShardReport) ThroughputPerMs() float64 {
	if r.TotalNs <= 0 {
		return 0
	}
	return float64(r.Tasks) / (r.TotalNs / 1e6)
}

// RunSharded splits one batch of tasks across shards identical simulated
// devices, round-robin in submission order (task k on device k mod S —
// the same deterministic scatter core.ShardedProver uses, so the
// simulated and real merge orders agree). Each device runs the full
// pipelined schedule over its slice under its own memory budget
// (spec.DeviceMemBytes is per device); a device whose working set
// exceeds that budget fails the whole run with ErrOutOfMemory, exactly
// as the single-device model does.
func RunSharded(spec DeviceSpec, stages []Stage, tasks, shards int, opts Options) (*ShardReport, error) {
	if shards < 1 {
		return nil, fmt.Errorf("gpusim: shard count %d < 1", shards)
	}
	if tasks < shards {
		return nil, fmt.Errorf("gpusim: %d tasks cannot occupy %d shards (need tasks ≥ shards)", tasks, shards)
	}
	out := &ShardReport{Shards: shards, Tasks: tasks, PerShard: make([]*Report, shards)}
	for i := 0; i < shards; i++ {
		n := tasks / shards
		if i < tasks%shards {
			n++
		}
		// Label each device's run so its simulated spans land on a
		// per-shard trace process instead of overlaying one timeline.
		o := opts
		o.Shard = i + 1
		rep, err := RunPipelined(spec, stages, n, o)
		if err != nil {
			obs.Error("gpusim", "shard.failed",
				obs.Shard(i), slog.Int("tasks", n), obs.Err(err))
			return nil, fmt.Errorf("gpusim: shard %d: %w", i, err)
		}
		out.PerShard[i] = rep
		if rep.TotalNs > out.TotalNs {
			out.TotalNs = rep.TotalNs
		}
		if rep.PeakDeviceBytes > out.PeakDeviceBytes {
			out.PeakDeviceBytes = rep.PeakDeviceBytes
		}
	}
	return out, nil
}
