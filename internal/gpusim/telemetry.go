package gpusim

import "batchzk/internal/telemetry"

// Span-emission budgets: the simulated timeline is periodic (one pipeline
// cycle / one naive wave repeats), so a bounded prefix carries the full
// visual information of Figure 9 without materializing tasks×stages
// spans for large batches. The tracer's ring buffer bounds memory
// regardless; these bounds keep run time independent of batch size.
const (
	spanCycleBudget = 48 // pipelined: cycles of per-stage kernel spans
	spanWaveBudget  = 8  // naive: waves of per-round kernel spans
)

// hostBytes sums the per-task host↔device traffic of a stage list.
func hostBytes(stages []Stage) (in, out float64) {
	for i := range stages {
		in += stages[i].HostBytesIn
		out += stages[i].HostBytesOut
	}
	return in, out
}

// emitCommonMetrics records the counters shared by both schemes.
func emitCommonMetrics(tel *telemetry.Sink, scheme string, stages []Stage, tasks int, rep *Report) {
	tel.Counter("gpusim/runs/" + scheme).Inc()
	in, out := hostBytes(stages)
	tel.Counter("gpusim/host/bytes_in").Add(int64(in * float64(tasks)))
	tel.Counter("gpusim/host/bytes_out").Add(int64(out * float64(tasks)))
	tel.Gauge("gpusim/mem/peak_bytes").Set(rep.PeakDeviceBytes)
	tel.Histogram("gpusim/task/latency_ns").Observe(int64(rep.LatencyNs))
}

// emitPipelinedTelemetry records metrics and simulated-clock spans for a
// pipelined run: one persistent kernel per stage (tracked on its own
// thread lane), one task entering per cycle, transfers on a dedicated
// stream lane. At any steady-state instant several stage kernels overlap
// — the paper's full-workload state.
func emitPipelinedTelemetry(tel *telemetry.Sink, layer string, stages []Stage, stageNs []float64, effCycle, transferNs float64, tasks int, rep *Report) {
	emitCommonMetrics(tel, "pipelined", stages, tasks, rep)
	// One persistent kernel per stage for the whole run.
	tel.Counter("gpusim/kernels/launched").Add(int64(len(stages)))
	hist := tel.Histogram("gpusim/stage/ns")
	for i := range stageNs {
		hist.Observe(int64(stageNs[i]))
	}
	tel.Histogram("gpusim/cycle/ns").Observe(int64(effCycle))

	tr := tel.Trace()
	if tr == nil {
		return
	}
	root := tr.Add(layer, "run/pipelined", 0, 0, -1, 0, rep.TotalNs)
	totalCycles := tasks + len(stages) - 1
	emit := min(totalCycles, spanCycleBudget)
	for cyc := 0; cyc < emit; cyc++ {
		for i := range stages {
			task := cyc - i
			if task < 0 || task >= tasks {
				continue
			}
			tr.Add(layer, "kernel/"+stages[i].Name, root, i, task,
				float64(cyc)*effCycle, stageNs[i])
		}
		// Dynamic loading/storing for the task entering this cycle,
		// hidden under compute when Overlap is on.
		if transferNs > 0 && cyc < tasks {
			tr.Add(layer, "stream/h2d+d2h", root, len(stages), cyc,
				float64(cyc)*effCycle, transferNs)
		}
	}
}

// emitNaiveTelemetry records metrics and simulated-clock spans for a
// naive run: every task re-launches a kernel per barrier round, rounds
// execute strictly one after another (no two stages ever overlap), and
// transfers serialize behind the wave's compute.
func emitNaiveTelemetry(tel *telemetry.Sink, layer string, stages []Stage, roundNs []float64, transferNs float64, tasks, waves int, rep *Report) {
	emitCommonMetrics(tel, "naive", stages, tasks, rep)
	// A kernel launch per round per task (the launch tax the pipelined
	// scheme avoids).
	tel.Counter("gpusim/kernels/launched").Add(int64(tasks) * int64(len(stages)))
	hist := tel.Histogram("gpusim/stage/ns")
	for i := range roundNs {
		hist.Observe(int64(roundNs[i]))
	}

	tr := tel.Trace()
	if tr == nil {
		return
	}
	root := tr.Add(layer, "run/naive", 0, 0, -1, 0, rep.TotalNs)
	t := 0.0
	for w := 0; w < min(waves, spanWaveBudget); w++ {
		for i := range stages {
			tr.Add(layer, "kernel/"+stages[i].Name, root, 0, -1, t, roundNs[i])
			t += roundNs[i]
		}
		if transferNs > 0 {
			tr.Add(layer, "stream/h2d+d2h", root, 1, -1, t, transferNs)
			t += transferNs
		}
	}
}
