package gpusim

import "testing"

func shardSpec() DeviceSpec {
	return DeviceSpec{
		Name: "test", Cores: 1024, ClockGHz: 1.0,
		MemBandwidthGBs: 500, LinkGBs: 16,
		DeviceMemBytes: 1 << 30, SIMDWidth: 32,
	}
}

func TestRunShardedValidation(t *testing.T) {
	stages := []Stage{{Name: "s", WorkOps: 1024, CyclesPerOp: 4}}
	if _, err := RunSharded(shardSpec(), stages, 16, 0, Options{}); err == nil {
		t.Fatal("accepted zero shards")
	}
	if _, err := RunSharded(shardSpec(), stages, 2, 4, Options{}); err == nil {
		t.Fatal("accepted more shards than tasks")
	}
}

func TestRunShardedSplitsAndScales(t *testing.T) {
	stages := []Stage{
		{Name: "a", WorkOps: 1 << 16, CyclesPerOp: 8},
		{Name: "b", WorkOps: 1 << 14, CyclesPerOp: 8},
	}
	one, err := RunSharded(shardSpec(), stages, 64, 1, Options{TaskBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	three, err := RunSharded(shardSpec(), stages, 64, 3, Options{TaskBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin split: 64 = 22 + 21 + 21.
	if got := []int{three.PerShard[0].Tasks, three.PerShard[1].Tasks, three.PerShard[2].Tasks}; got[0] != 22 || got[1] != 21 || got[2] != 21 {
		t.Fatalf("task split %v", got)
	}
	if three.TotalNs >= one.TotalNs {
		t.Fatal("sharding did not reduce wall time")
	}
	if three.ThroughputPerMs() <= one.ThroughputPerMs() {
		t.Fatal("sharding did not raise aggregate throughput")
	}
	// Wall time is the slowest shard.
	max := 0.0
	for _, r := range three.PerShard {
		if r.TotalNs > max {
			max = r.TotalNs
		}
	}
	if three.TotalNs != max {
		t.Fatalf("TotalNs %v != slowest shard %v", three.TotalNs, max)
	}
}
