package gpusim

import (
	"fmt"
	"log/slog"

	"batchzk/internal/faults"
	"batchzk/internal/obs"
	"batchzk/internal/telemetry"
)

// Fault modelling: when Options.Faults carries an injector, every
// (stage, task) kernel launch of a simulated run is consulted against the
// deterministic fault plan, and the run's timing and outcome reflect what
// a real device would do:
//
//   - KernelFault / WorkerPanic — the launch fails transiently and is
//     retried (re-paying the stage time plus launch overhead), up to
//     launchRetryBudget attempts; a fault that persists through the whole
//     budget aborts the run with a LaunchError.
//   - TransferStall — the launch's host↔device traffic stalls; the run
//     pays a stall penalty proportional to the stage's transfer time.
//   - Straggler — the launch completes but late, paying one extra stage
//     time (a 2× latency spike on that slot).
//   - SlowShard — a sustained device-wide slowdown: the launch completes
//     but pays 4× its budgeted slot time (thermal throttling or a
//     contended link degrading the whole device, not one slot).
//   - MemCorruption — an uncorrectable ECC error poisons the task's
//     device buffers; the run aborts immediately with a LaunchError whose
//     chain reaches faults.ErrMemCorruption (on real hardware this kills
//     the CUDA context).
//
// The walk is deterministic: the same injector seed replays the same
// faults at the same launches regardless of scheduling.

// launchRetryBudget bounds how many times one launch is retried before
// the run gives up on it.
const launchRetryBudget = 3

// FaultStats summarizes the injected-fault activity of one simulated run.
type FaultStats struct {
	// Injected counts every fault drawn during the run.
	Injected int `json:"injected"`
	// KernelRetries counts transient launch failures that were retried.
	KernelRetries int `json:"kernel_retries"`
	// TransferStalls counts stalled host↔device transfers.
	TransferStalls int `json:"transfer_stalls"`
	// Stragglers counts slow-straggler latency spikes.
	Stragglers int `json:"stragglers"`
	// SlowShards counts sustained device-slowdown faults.
	SlowShards int `json:"slow_shards"`
	// ExtraNs is the total simulated time added by recovery actions.
	ExtraNs float64 `json:"extra_ns"`
}

// LaunchError reports a kernel launch the simulated device could not
// recover: an uncorrectable memory corruption, or a transient fault that
// persisted through the whole retry budget. It wraps the injected fault,
// so errors.Is reaches the class sentinel.
type LaunchError struct {
	Scheme string
	Stage  string
	Task   int
	Err    error
}

func (e *LaunchError) Error() string {
	return fmt.Sprintf("gpusim: %s launch failed (stage %s, task %d): %v", e.Scheme, e.Stage, e.Task, e.Err)
}

func (e *LaunchError) Unwrap() error { return e.Err }

// applyFaults walks every (stage, task) launch consulting the injector
// and returns the run's fault accounting, or a LaunchError when a launch
// could not be recovered. stageNs holds the per-stage slot time the
// retry/straggler penalties re-pay.
func applyFaults(inj *faults.Injector, spec DeviceSpec, scheme string, stages []Stage, stageNs []float64, tasks int, tel *telemetry.Sink) (FaultStats, error) {
	var fs FaultStats
	for task := 0; task < tasks; task++ {
		for i := range stages {
			// Site names carry the stage index: several stages share a
			// name (e.g. merkle/layer), and each must draw independently.
			site := fmt.Sprintf("%s/%s#%d", scheme, stages[i].Name, i)
			var pending []*faults.Fault
			recovered := false
			for attempt := 1; attempt <= launchRetryBudget && !recovered; attempt++ {
				f := inj.Draw(site, task, attempt)
				if f == nil {
					recovered = true
					break
				}
				fs.Injected++
				switch f.Class {
				case faults.MemCorruption:
					// Uncorrectable: poisoned device buffers end the run.
					f.MarkQuarantined()
					markAll(pending, faults.Quarantined)
					emitFaultMetrics(tel, fs)
					lerr := &LaunchError{Scheme: scheme, Stage: stages[i].Name, Task: task, Err: f}
					obs.Error("gpusim", "launch.failed",
						slog.String("scheme", scheme), obs.Stage(stages[i].Name),
						slog.Int("task", task), slog.String("class", "mem-corruption"),
						obs.Err(lerr))
					return fs, lerr
				case faults.TransferStall:
					// The transfer completes after a stall: 4× the stage's
					// link time plus a timeout floor of one kernel launch.
					stall := 4*(stages[i].HostBytesIn+stages[i].HostBytesOut)/spec.LinkGBs + spec.KernelLaunchNs
					fs.TransferStalls++
					fs.ExtraNs += stall
					f.MarkRecovered()
					recovered = true
				case faults.Straggler:
					// The slot completes at 2× its budgeted time.
					fs.Stragglers++
					fs.ExtraNs += stageNs[i]
					f.MarkRecovered()
					recovered = true
				case faults.SlowShard:
					// The whole device is degraded: 4× the budgeted slot.
					fs.SlowShards++
					fs.ExtraNs += 3 * stageNs[i]
					f.MarkRecovered()
					recovered = true
				default: // KernelFault, WorkerPanic: transient launch failure
					fs.KernelRetries++
					fs.ExtraNs += stageNs[i] + spec.KernelLaunchNs
					pending = append(pending, f)
				}
			}
			if !recovered {
				// The transient fault persisted through the retry budget.
				markAll(pending, faults.Quarantined)
				last := pending[len(pending)-1]
				emitFaultMetrics(tel, fs)
				lerr := &LaunchError{Scheme: scheme, Stage: stages[i].Name, Task: task,
					Err: fmt.Errorf("persisted through %d attempts: %w", launchRetryBudget, last)}
				obs.Error("gpusim", "launch.failed",
					slog.String("scheme", scheme), obs.Stage(stages[i].Name),
					slog.Int("task", task), slog.String("class", "retry-budget-exhausted"),
					obs.Attempt(launchRetryBudget), obs.Err(lerr))
				return fs, lerr
			}
			markAll(pending, faults.Recovered)
		}
	}
	emitFaultMetrics(tel, fs)
	return fs, nil
}

func markAll(pending []*faults.Fault, o faults.Outcome) {
	for _, f := range pending {
		if o == faults.Quarantined {
			f.MarkQuarantined()
		} else {
			f.MarkRecovered()
		}
	}
}

func emitFaultMetrics(tel *telemetry.Sink, fs FaultStats) {
	if tel == nil || fs.Injected == 0 {
		return
	}
	tel.Counter("gpusim/faults/injected").Add(int64(fs.Injected))
	tel.Counter("gpusim/faults/kernel_retries").Add(int64(fs.KernelRetries))
	tel.Counter("gpusim/faults/transfer_stalls").Add(int64(fs.TransferStalls))
	tel.Counter("gpusim/faults/stragglers").Add(int64(fs.Stragglers))
	tel.Counter("gpusim/faults/slow_shards").Add(int64(fs.SlowShards))
	tel.Histogram("gpusim/faults/extra_ns").Observe(int64(fs.ExtraNs))
}
