// Package gpusim is the hardware substitution at the heart of this
// reproduction: a deterministic model of a CUDA-class device that the
// pipelined and naive ZKP modules are scheduled onto.
//
// The paper's claims are scheduling/occupancy arguments — a stage-per-
// kernel pipeline keeps threads busy while the intuitive one-kernel-per-
// proof approach idles them; dynamic loading bounds device memory;
// multi-stream overlap hides PCIe transfers. gpusim models exactly the
// quantities those arguments depend on:
//
//   - execution cores grouped into 32-thread SIMD warps, with kernel
//     core-shares allocated in warp granularity;
//   - per-operation costs in core-cycles (field multiply, SHA-256
//     compression, …) and a device-memory bandwidth roofline;
//   - a host↔device link with finite bandwidth, with and without
//     compute/transfer overlap (multi-stream);
//   - device-memory capacity accounting with peak tracking;
//   - a per-cycle core-utilization trace (the paper's Figure 9).
//
// Times are derived, never hard-coded: callers describe the real work
// counts of their algorithms (hash compressions per Merkle layer,
// multiply-adds per encoder stage, bytes touched per sum-check round) and
// the engine folds them with a device profile.
package gpusim

import (
	"errors"
	"fmt"
	"math"

	"batchzk/internal/faults"
	"batchzk/internal/telemetry"
)

// WarpSize is the SIMD width threads are scheduled in.
const WarpSize = 32

// DeviceSpec describes the hardware being modelled.
type DeviceSpec struct {
	Name            string
	Cores           int     // parallel execution lanes (CUDA cores / vCPUs)
	ClockGHz        float64 // core clock; cycles/ns per core
	MemBandwidthGBs float64 // device-memory bandwidth (roofline)
	LinkGBs         float64 // host↔device link (PCIe / C2C) bandwidth
	DeviceMemBytes  int64   // device-memory capacity
	KernelLaunchNs  float64 // fixed cost of launching one kernel
	SIMDWidth       int     // warp width; 1 disables warp-granularity effects (CPUs)
}

// Validate checks the spec for usability.
func (s DeviceSpec) Validate() error {
	if s.Cores <= 0 || s.ClockGHz <= 0 {
		return fmt.Errorf("gpusim: %s: cores/clock must be positive", s.Name)
	}
	if s.MemBandwidthGBs <= 0 || s.LinkGBs <= 0 {
		return fmt.Errorf("gpusim: %s: bandwidths must be positive", s.Name)
	}
	if s.DeviceMemBytes <= 0 {
		return fmt.Errorf("gpusim: %s: device memory must be positive", s.Name)
	}
	if s.SIMDWidth <= 0 {
		return fmt.Errorf("gpusim: %s: SIMD width must be positive", s.Name)
	}
	return nil
}

// opsPerNs is the device's peak op throughput for an op costing cycles.
func (s DeviceSpec) opsPerNs(cycles float64) float64 {
	return float64(s.Cores) * s.ClockGHz / cycles
}

// Stage is one step of a module's computation for a single task: the
// Merkle layer, sum-check round, or encoder level it corresponds to.
type Stage struct {
	Name string
	// WorkOps is the number of uniform operations the stage performs for
	// one task (hashes in a layer, multiply-adds in a matrix level, …).
	WorkOps float64
	// CyclesPerOp is the core-cycle cost of one operation.
	CyclesPerOp float64
	// ParallelOps bounds how many operations can run concurrently
	// (usually = WorkOps; lower for serial tails). Zero means WorkOps.
	ParallelOps float64
	// MemBytes is the device-memory traffic of the stage per task, for the
	// bandwidth roofline (0 = compute bound).
	MemBytes float64
	// HostBytesIn/Out are host↔device transfers attributable to the stage
	// per task (dynamic loading in, intermediate results out).
	HostBytesIn  float64
	HostBytesOut float64
	// WarpImbalance ≥ 1 inflates compute time for SIMD divergence (the
	// unsorted-row penalty of §3.3). Zero means 1.
	WarpImbalance float64
}

func (st *Stage) parallel() float64 {
	if st.ParallelOps > 0 {
		return st.ParallelOps
	}
	return st.WorkOps
}

func (st *Stage) imbalance() float64 {
	if st.WarpImbalance > 1 {
		return st.WarpImbalance
	}
	return 1
}

// totalWorkCycles is the stage's compute demand in core-cycles.
func (st *Stage) totalWorkCycles() float64 {
	return st.WorkOps * st.CyclesPerOp * st.imbalance()
}

// Report summarizes one simulated run.
type Report struct {
	Scheme string
	Tasks  int
	// Device / Cores identify the spec the run executed on, so a report
	// can be profiled without re-threading the spec through callers.
	Device string
	Cores  int

	// CycleNs is the steady-state pipeline cycle (pipelined runs only).
	CycleNs float64
	// LatencyNs is the start-to-finish time of a single task.
	LatencyNs float64
	// TotalNs is the wall time for all tasks.
	TotalNs float64
	// ComputeNsPerTask / TransferNsPerTask split the steady-state cost.
	ComputeNsPerTask  float64
	TransferNsPerTask float64
	// Overlapped reports whether transfers were hidden under compute.
	Overlapped bool
	// PeakDeviceBytes is the device-memory high-water mark.
	PeakDeviceBytes int64
	// Concurrency is the number of tasks in flight at steady state: the
	// pipeline depth (pipelined) or the kernel wave width K (naive).
	Concurrency int
	// Stages carries the per-stage accounting the profiler attributes
	// cycles from (one record per stage, in stage order).
	Stages []StageRecord
	// Utilization trace: fraction of device cores busy over time.
	Trace []UtilSample
	// Faults is the injected-fault accounting of the run (all zero when
	// no injector was configured).
	Faults FaultStats
}

// StageRecord is the per-stage accounting of one run: where the stage's
// allocated lanes spend their time for each task that occupies it. All
// times are per task; lane counts are per concurrently executing task.
type StageRecord struct {
	Name string `json:"name"`
	// ShareCores is the number of device lanes the stage's kernel owns
	// while a task occupies it (pipelined: its dedicated core share;
	// naive: the lanes one task's kernel uses during the round).
	ShareCores float64 `json:"share_cores"`
	// ComputeNs is the pure arithmetic time at the allocated lanes.
	ComputeNs float64 `json:"compute_ns"`
	// MemNs is the stage's time at the device-memory bandwidth roofline.
	MemNs float64 `json:"mem_ns"`
	// LaunchNs is kernel-launch overhead paid per task (naive rounds).
	LaunchNs float64 `json:"launch_ns"`
	// ActiveNs is the time the stage's lanes are occupied per task:
	// max(ComputeNs, MemNs) + LaunchNs.
	ActiveNs float64 `json:"active_ns"`
	// WarpOccupancy is the fraction of occupied lane-cycles doing useful
	// operations: SIMD divergence, warp-rounding waste and memory stalls
	// all lower it. In (0, 1].
	WarpOccupancy float64 `json:"warp_occupancy"`
}

// ThroughputPerMs returns completed tasks per millisecond.
func (r *Report) ThroughputPerMs() float64 {
	if r.TotalNs <= 0 {
		return 0
	}
	return float64(r.Tasks) / (r.TotalNs / 1e6)
}

// AmortizedNsPerTask returns wall time divided by task count.
func (r *Report) AmortizedNsPerTask() float64 {
	if r.Tasks == 0 {
		return 0
	}
	return r.TotalNs / float64(r.Tasks)
}

// UtilSample is one point of the core-utilization timeline.
type UtilSample struct {
	TimeNs float64
	Util   float64 // 0..1 fraction of cores busy
}

// ErrOutOfMemory is returned when a run's working set exceeds device memory.
var ErrOutOfMemory = errors.New("gpusim: device memory exceeded")

// Options tune a simulated run.
type Options struct {
	// Threads is the thread budget of the module (default: device cores).
	Threads int
	// Overlap enables multi-stream compute/transfer overlap (§3.1, §4).
	Overlap bool
	// TaskBytes is the device-resident working set per in-flight task, for
	// memory accounting; pipelined runs hold one task per stage, naive
	// runs hold every concurrent task's full input.
	TaskBytes int64
	// PreloadTasks is the number of tasks whose inputs are loaded into
	// device memory in advance (naive schemes load the whole batch — the
	// paper's m·N-blocks cost; the pipelined scheme loads one task per
	// cycle). Zero means only the concurrently executing tasks.
	PreloadTasks int
	// EqualShares gives every pipeline stage the same core share instead
	// of the paper's work-proportional allocation (§4) — the ablation
	// showing why manual resource allocation matters.
	EqualShares bool
	// TraceCap bounds the number of utilization samples recorded
	// (0 = default 512; negative disables the trace). When a run has
	// more sample points than the cap, the trace is stride-decimated —
	// every k-th point is kept across the whole run, so the drain at the
	// tail is represented — rather than truncated at the cap.
	TraceCap int
	// Telemetry, when set, records metrics (kernel launches, host↔device
	// bytes, per-stage times, peak memory) and simulated-clock spans for
	// the run into the given sink; when nil, the process-wide sink
	// installed via telemetry.Enable is used, if any.
	Telemetry *telemetry.Sink
	// Faults, when set, injects deterministic device faults into the run:
	// every (stage, task) launch is consulted against the injector's plan
	// and the report's timing and FaultStats reflect the recovery actions
	// (see faults.go). Unrecoverable faults abort the run with a
	// LaunchError.
	Faults *faults.Injector
	// Shard is the 1-based shard label of this run inside a sharded batch
	// (0 = unsharded). RunSharded sets it per device so each shard's
	// simulated spans land on their own trace process ("gpusim/shard<i>")
	// and the Chrome view shows the per-shard assignment instead of
	// overlaying every device on one timeline.
	Shard int
}

// spanLayer is the trace layer (Chrome trace process) runs record under.
func (o Options) spanLayer() string {
	if o.Shard > 0 {
		return fmt.Sprintf("gpusim/shard%d", o.Shard-1)
	}
	return "gpusim"
}

func (o Options) threads(spec DeviceSpec) int {
	if o.Threads > 0 {
		return o.Threads
	}
	return spec.Cores
}

// warpRound rounds a core share down to warp granularity, minimum one warp.
func warpRound(share float64, simd int) float64 {
	if simd <= 1 {
		if share < 1 {
			return 1
		}
		return share
	}
	w := math.Floor(share / float64(simd))
	if w < 1 {
		w = 1
	}
	return w * float64(simd)
}

// RunPipelined simulates the paper's stage-per-kernel pipeline: each stage
// is a dedicated kernel whose core share is proportional to its work, and
// one task enters per cycle. The cycle time is set by the slowest stage
// (compute or bandwidth bound), and transfers overlap with compute when
// Options.Overlap is set.
func RunPipelined(spec DeviceSpec, stages []Stage, tasks int, opts Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(stages) == 0 || tasks <= 0 {
		return nil, fmt.Errorf("gpusim: need at least one stage and one task")
	}
	threads := opts.threads(spec)
	cores := float64(min(threads, spec.Cores))

	// Allocate core shares proportional to per-stage work, in warp quanta.
	totalCycles := 0.0
	for i := range stages {
		totalCycles += stages[i].totalWorkCycles()
	}
	if totalCycles <= 0 {
		return nil, fmt.Errorf("gpusim: stages carry no work")
	}
	stageNs := make([]float64, len(stages))
	stageShare := make([]float64, len(stages)) // core lanes owned per stage
	records := make([]StageRecord, len(stages))
	var transferBytes float64
	cycleNs := 0.0
	for i := range stages {
		st := &stages[i]
		proportion := st.totalWorkCycles() / totalCycles
		if opts.EqualShares {
			proportion = 1 / float64(len(stages))
		}
		share := warpRound(cores*proportion, spec.SIMDWidth)
		if p := st.parallel(); share > p {
			share = p // cannot use more lanes than independent ops
		}
		stageShare[i] = share
		computeNs := st.totalWorkCycles() / (share * spec.ClockGHz)
		memNs := st.MemBytes / spec.MemBandwidthGBs // GB/s == bytes/ns
		stageNs[i] = math.Max(computeNs, memNs)
		if stageNs[i] > cycleNs {
			cycleNs = stageNs[i]
		}
		transferBytes += st.HostBytesIn + st.HostBytesOut
		records[i] = StageRecord{
			Name:          st.Name,
			ShareCores:    share,
			ComputeNs:     computeNs,
			MemNs:         memNs,
			ActiveNs:      stageNs[i],
			WarpOccupancy: warpOccupancy(st, share, spec.ClockGHz, stageNs[i]),
		}
	}
	transferNs := transferBytes / spec.LinkGBs

	effCycle := cycleNs + transferNs
	if opts.Overlap {
		effCycle = math.Max(cycleNs, transferNs)
	}

	// Device memory: the pipeline holds one task's data per stage.
	peak := opts.TaskBytes // per in-flight task × stages, approximated by
	// the caller via TaskBytes covering the whole in-flight footprint.
	if peak > spec.DeviceMemBytes {
		return nil, fmt.Errorf("%w: pipeline working set %d > %d", ErrOutOfMemory, peak, spec.DeviceMemBytes)
	}

	depth := float64(len(stages))
	rep := &Report{
		Scheme:            "pipelined",
		Tasks:             tasks,
		Device:            spec.Name,
		Cores:             spec.Cores,
		CycleNs:           effCycle,
		LatencyNs:         depth * effCycle,
		TotalNs:           (float64(tasks) + depth - 1) * effCycle,
		ComputeNsPerTask:  cycleNs,
		TransferNsPerTask: transferNs,
		Overlapped:        opts.Overlap,
		PeakDeviceBytes:   peak,
		Concurrency:       len(stages),
		Stages:            records,
	}

	// Injected device faults: every launch consults the plan; recovery
	// time stretches the run, unrecoverable faults abort it.
	if opts.Faults != nil {
		fs, err := applyFaults(opts.Faults, spec, "pipelined", stages, stageNs, tasks, telemetry.Resolve(opts.Telemetry))
		if err != nil {
			return nil, err
		}
		rep.Faults = fs
		rep.TotalNs += fs.ExtraNs
	}

	// Utilization trace: ramp-up as the pipeline fills, full-occupancy
	// plateau, drain at the end. Stage i's kernel keeps its core share
	// busy whenever a task occupies it — occupancy semantics, matching
	// how GPU utilization is measured (a memory-stalled resident kernel
	// still counts as busy), which is what the paper's Figure 9 plots.
	// Runs longer than the cap are stride-decimated, never truncated.
	if cap := traceCap(opts); cap > 0 {
		totalCyclesCount := tasks + len(stages) - 1
		stride := maxInt(1, (totalCyclesCount+cap-1)/cap)
		stageUtil := make([]float64, len(stages))
		for i := range stages {
			stageUtil[i] = stageShare[i] / float64(spec.Cores)
		}
		for cyc := 0; cyc < totalCyclesCount; cyc += stride {
			u := 0.0
			for i := range stages {
				// Stage i holds task (cyc - i) if that task exists.
				taskID := cyc - i
				if taskID >= 0 && taskID < tasks {
					u += stageUtil[i]
				}
			}
			rep.Trace = append(rep.Trace, UtilSample{TimeNs: float64(cyc) * effCycle, Util: math.Min(u, 1)})
		}
	}
	if tel := telemetry.Resolve(opts.Telemetry); tel != nil {
		emitPipelinedTelemetry(tel, opts.spanLayer(), stages, stageNs, effCycle, transferNs, tasks, rep)
	}
	return rep, nil
}

// RunNaive simulates the intuitive approach the paper contrasts against
// (Figure 4a): one kernel per task holding ThreadsPerTask threads for the
// task's entire life, processing the stages as barrier-separated rounds
// (with a kernel launch per round). Tasks run in waves of
// K = threads / threadsPerTask concurrent kernels.
func RunNaive(spec DeviceSpec, stages []Stage, tasks, threadsPerTask int, opts Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(stages) == 0 || tasks <= 0 || threadsPerTask <= 0 {
		return nil, fmt.Errorf("gpusim: need stages, tasks and a positive thread reservation")
	}
	threads := opts.threads(spec)
	cores := float64(min(threads, spec.Cores))

	// Concurrent kernels: each reserves threadsPerTask lanes.
	k := maxInt(1, int(cores)/threadsPerTask)
	if k > tasks {
		k = tasks
	}
	perTaskCores := math.Min(float64(threadsPerTask), cores/float64(k))

	// Device memory: every concurrent task holds its full input resident,
	// plus any pre-loaded inputs (the m·N-blocks cost of the paper's
	// intuitive approach). Preloading degrades gracefully to whatever
	// fits; the concurrently executing tasks themselves must fit.
	if opts.TaskBytes > 0 && opts.TaskBytes*int64(k) > spec.DeviceMemBytes {
		return nil, fmt.Errorf("%w: %d concurrent tasks need %d > %d",
			ErrOutOfMemory, k, opts.TaskBytes*int64(k), spec.DeviceMemBytes)
	}
	resident := k
	if opts.PreloadTasks > resident {
		resident = opts.PreloadTasks
	}
	if resident > tasks {
		resident = tasks
	}
	if opts.TaskBytes > 0 {
		if fit := int(spec.DeviceMemBytes / opts.TaskBytes); resident > fit {
			resident = fit
		}
	}
	peak := opts.TaskBytes * int64(resident)

	// Per-task latency: barrier rounds.
	latency := 0.0
	roundNs := make([]float64, len(stages))
	roundBusy := make([]float64, len(stages)) // busy lanes during the round
	records := make([]StageRecord, len(stages))
	var transferBytes float64
	for i := range stages {
		st := &stages[i]
		lanes := math.Min(perTaskCores, st.parallel())
		computeNs := st.totalWorkCycles() / (lanes * spec.ClockGHz)
		memNs := st.MemBytes / spec.MemBandwidthGBs
		roundNs[i] = math.Max(computeNs, memNs) + spec.KernelLaunchNs
		roundBusy[i] = lanes
		latency += roundNs[i]
		transferBytes += st.HostBytesIn + st.HostBytesOut
		records[i] = StageRecord{
			Name:          st.Name,
			ShareCores:    lanes,
			ComputeNs:     computeNs,
			MemNs:         memNs,
			LaunchNs:      spec.KernelLaunchNs,
			ActiveNs:      roundNs[i],
			WarpOccupancy: warpOccupancy(st, lanes, spec.ClockGHz, roundNs[i]-spec.KernelLaunchNs),
		}
	}
	// No multi-stream in the naive scheme: transfers serialize per task.
	transferNs := transferBytes / spec.LinkGBs
	latency += transferNs

	waves := (tasks + k - 1) / k
	rep := &Report{
		Scheme:            "naive",
		Tasks:             tasks,
		Device:            spec.Name,
		Cores:             spec.Cores,
		LatencyNs:         latency,
		TotalNs:           float64(waves) * latency,
		ComputeNsPerTask:  latency - transferNs,
		TransferNsPerTask: transferNs,
		PeakDeviceBytes:   peak,
		Concurrency:       k,
		Stages:            records,
	}

	if opts.Faults != nil {
		fs, err := applyFaults(opts.Faults, spec, "naive", stages, roundNs, tasks, telemetry.Resolve(opts.Telemetry))
		if err != nil {
			return nil, err
		}
		rep.Faults = fs
		rep.TotalNs += fs.ExtraNs
	}

	if cap := traceCap(opts); cap > 0 {
		// One wave's utilization profile, repeated: during round i the k
		// concurrent kernels keep k·roundBusy[i] lanes active. When the
		// run has more rounds than the cap, every stride-th round is
		// sampled uniformly across *all* waves — the tail of the run is
		// decimated like the head, never cut off at the cap.
		totalRounds := waves * len(stages)
		stride := maxInt(1, (totalRounds+cap-1)/cap)
		t := 0.0
		round := 0
		for w := 0; w < waves; w++ {
			for i := 0; i < len(stages); i++ {
				if round%stride == 0 {
					u := float64(k) * roundBusy[i] / float64(spec.Cores)
					rep.Trace = append(rep.Trace, UtilSample{TimeNs: t, Util: math.Min(u, 1)})
				}
				t += roundNs[i]
				round++
			}
			t += transferNs
		}
	}
	if tel := telemetry.Resolve(opts.Telemetry); tel != nil {
		emitNaiveTelemetry(tel, opts.spanLayer(), stages, roundNs, transferNs, tasks, waves, rep)
	}
	return rep, nil
}

// warpOccupancy is the fraction of a stage's occupied lane-cycles spent
// on useful operations: share·clock·activeNs lane-cycles are held while
// only WorkOps·CyclesPerOp are needed, so SIMD divergence (WarpImbalance),
// warp-granularity rounding and memory stalls all push it below 1.
func warpOccupancy(st *Stage, share, clockGHz, activeNs float64) float64 {
	if share <= 0 || activeNs <= 0 {
		return 1
	}
	useful := st.WorkOps * st.CyclesPerOp
	held := share * clockGHz * activeNs
	if held <= 0 || useful >= held {
		return 1
	}
	return useful / held
}

func traceCap(o Options) int {
	switch {
	case o.TraceCap < 0:
		return 0
	case o.TraceCap == 0:
		return 512
	default:
		return o.TraceCap
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
