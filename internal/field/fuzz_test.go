package field

import (
	"bytes"
	"math/big"
	"testing"
)

// FuzzElementDecoding drives the canonical 32-byte codec with arbitrary
// input and checks the invariants the proof system relies on:
//
//   - accepted encodings round-trip bit-exactly (SetBytes ∘ ToBytes = id);
//   - rejected encodings are exactly the non-canonical ones (≥ r), and
//     rejection never mutates the receiver;
//   - UnmarshalBinary agrees with SetBytes on every input;
//   - SetBytesWide of arbitrary bytes always lands on a canonical value
//     that agrees with the reference big.Int reduction.
func FuzzElementDecoding(f *testing.F) {
	f.Add(make([]byte, 32))
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	f.Add(Modulus().Bytes())                              // exactly r: must be rejected
	f.Add(new(big.Int).Sub(Modulus(), big.NewInt(1)).Bytes()) // r−1: canonical maximum
	f.Add([]byte{1, 2, 3})                                // short input (wide path only)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= Bytes {
			var enc [Bytes]byte
			copy(enc[:], data[:Bytes])
			canonical := new(big.Int).SetBytes(enc[:]).Cmp(Modulus()) < 0

			var e Element
			e.SetUint64(12345) // sentinel: must survive a rejected decode
			err := e.SetBytes(enc)
			if canonical != (err == nil) {
				t.Fatalf("SetBytes accept/reject disagrees with big.Int: canonical=%v err=%v", canonical, err)
			}
			if err != nil {
				if v, ok := e.Uint64(); !ok || v != 12345 {
					t.Fatal("rejected decode mutated the receiver")
				}
			} else {
				back := e.ToBytes()
				if back != enc {
					t.Fatalf("round trip not identity:\n in  %x\n out %x", enc, back)
				}
			}

			var u Element
			uerr := u.UnmarshalBinary(enc[:])
			if (uerr == nil) != (err == nil) {
				t.Fatalf("UnmarshalBinary disagrees with SetBytes: %v vs %v", uerr, err)
			}
			if err == nil && !u.Equal(&e) {
				t.Fatal("UnmarshalBinary decoded a different value than SetBytes")
			}
		}

		// The wide reduction accepts anything and must match big.Int.
		var w Element
		w.SetBytesWide(data)
		want := new(big.Int).Mod(new(big.Int).SetBytes(data), Modulus())
		if w.BigInt().Cmp(want) != 0 {
			t.Fatalf("SetBytesWide = %v, big.Int reduction = %v", w.BigInt(), want)
		}
		wb := w.ToBytes()
		var rt Element
		if err := rt.SetBytes(wb); err != nil || !rt.Equal(&w) {
			t.Fatalf("SetBytesWide produced a non-canonical element: %v", err)
		}
	})
}

// FuzzFieldArith extends the decode corpus to the unrolled arithmetic:
// arbitrary bytes are split into two wide-reduced elements and the
// hot-path Mul/Square/Inverse are checked against the retained generic
// references and the big.Int ground truth.
func FuzzFieldArith(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(append(Modulus().Bytes(), new(big.Int).Sub(Modulus(), big.NewInt(1)).Bytes()...))
	f.Add([]byte{7}) // single byte: y reduces to zero
	f.Fuzz(func(t *testing.T, data []byte) {
		half := len(data) / 2
		var x, y Element
		x.SetBytesWide(data[:half])
		y.SetBytesWide(data[half:])

		var mul, mulRef Element
		mul.Mul(&x, &y)
		MulGeneric(&mulRef, &x, &y)
		if mul != mulRef {
			t.Fatalf("Mul mismatch: unrolled %v, generic %v", mul.String(), mulRef.String())
		}
		want := new(big.Int).Mul(x.BigInt(), y.BigInt())
		want.Mod(want, Modulus())
		if mul.BigInt().Cmp(want) != 0 {
			t.Fatalf("Mul = %v, big.Int wants %v", mul.String(), want)
		}

		var sq, sqRef Element
		sq.Square(&x)
		SquareGeneric(&sqRef, &x)
		if sq != sqRef {
			t.Fatalf("Square mismatch: dedicated %v, generic %v", sq.String(), sqRef.String())
		}

		var inv, invRef Element
		inv.Inverse(&x)
		InverseGeneric(&invRef, &x)
		if inv != invRef {
			t.Fatalf("Inverse mismatch: chain %v, generic %v", inv.String(), invRef.String())
		}
		if !x.IsZero() {
			var p Element
			p.Mul(&x, &inv)
			if !p.IsOne() {
				t.Fatalf("x·x⁻¹ = %v for x = %v", p.String(), x.String())
			}
		}
	})
}
