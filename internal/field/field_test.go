package field

import (
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randElement returns a deterministic pseudo-random element for quick tests.
func randElement(r *rand.Rand) Element {
	var e Element
	v := new(big.Int).Rand(r, Modulus())
	e.SetBigInt(v)
	return e
}

// Generate implements quick.Generator so Element works with testing/quick:
// random values must be properly reduced field elements.
func (Element) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randElement(r))
}

func TestConstants(t *testing.T) {
	// R mod r must equal the stored Montgomery one.
	R := new(big.Int).Lsh(big.NewInt(1), 256)
	R.Mod(R, Modulus())
	var e Element
	e.SetBigInt(big.NewInt(1))
	if got := e.BigInt(); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("round trip of 1 = %v", got)
	}
	if !e.Equal(&one) {
		t.Fatalf("SetBigInt(1) != One()")
	}
	// R^2 mod r must match rSquare: converting R (canonical) to Montgomery
	// form multiplies by R, i.e. the limbs should be R^2 mod r... check via
	// BigInt round trip instead.
	var r2 Element
	r2.SetBigInt(new(big.Int).Mul(R, R))
	want := new(big.Int).Mul(R, R)
	want.Mod(want, Modulus())
	if r2.BigInt().Cmp(want) != 0 {
		t.Fatalf("R^2 round trip mismatch")
	}
}

func TestSetUint64RoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 12345, 1 << 40, ^uint64(0)} {
		e := NewElement(v)
		got, ok := e.Uint64()
		if !ok || got != v {
			t.Fatalf("Uint64 round trip of %d = %d, %v", v, got, ok)
		}
	}
}

func TestAddSubMatchBigInt(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := randElement(r), randElement(r)
		var sum, diff Element
		sum.Add(&a, &b)
		diff.Sub(&a, &b)

		wantSum := new(big.Int).Add(a.BigInt(), b.BigInt())
		wantSum.Mod(wantSum, Modulus())
		if sum.BigInt().Cmp(wantSum) != 0 {
			t.Fatalf("add mismatch at %d", i)
		}
		wantDiff := new(big.Int).Sub(a.BigInt(), b.BigInt())
		wantDiff.Mod(wantDiff, Modulus())
		if diff.BigInt().Cmp(wantDiff) != 0 {
			t.Fatalf("sub mismatch at %d", i)
		}
	}
}

func TestMulMatchesBigInt(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a, b := randElement(r), randElement(r)
		var p Element
		p.Mul(&a, &b)
		want := new(big.Int).Mul(a.BigInt(), b.BigInt())
		want.Mod(want, Modulus())
		if p.BigInt().Cmp(want) != 0 {
			t.Fatalf("mul mismatch at %d: got %v want %v", i, p.BigInt(), want)
		}
	}
}

func TestMulEdgeCases(t *testing.T) {
	// Values near the modulus stress the final conditional subtraction.
	nearTop := new(big.Int).Sub(Modulus(), big.NewInt(1))
	var a, b, p Element
	a.SetBigInt(nearTop)
	b.SetBigInt(nearTop)
	p.Mul(&a, &b)
	want := new(big.Int).Mul(nearTop, nearTop)
	want.Mod(want, Modulus())
	if p.BigInt().Cmp(want) != 0 {
		t.Fatalf("(r-1)^2 mismatch")
	}
	var z Element
	p.Mul(&a, &z)
	if !p.IsZero() {
		t.Fatalf("x*0 != 0")
	}
	p.Mul(&a, &one)
	if !p.Equal(&a) {
		t.Fatalf("x*1 != x")
	}
}

func TestPropertyCommutativity(t *testing.T) {
	f := func(a, b Element) bool {
		var ab, ba Element
		ab.Mul(&a, &b)
		ba.Mul(&b, &a)
		var s1, s2 Element
		s1.Add(&a, &b)
		s2.Add(&b, &a)
		return ab.Equal(&ba) && s1.Equal(&s2)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAssociativityAndDistributivity(t *testing.T) {
	f := func(a, b, c Element) bool {
		var t1, t2, t3 Element
		// (a*b)*c == a*(b*c)
		t1.Mul(&a, &b)
		t1.Mul(&t1, &c)
		t2.Mul(&b, &c)
		t2.Mul(&a, &t2)
		if !t1.Equal(&t2) {
			return false
		}
		// a*(b+c) == a*b + a*c
		t1.Add(&b, &c)
		t1.Mul(&a, &t1)
		t2.Mul(&a, &b)
		t3.Mul(&a, &c)
		t2.Add(&t2, &t3)
		return t1.Equal(&t2)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyInverse(t *testing.T) {
	f := func(a Element) bool {
		if a.IsZero() {
			var inv Element
			inv.Inverse(&a)
			return inv.IsZero()
		}
		var inv, p Element
		inv.Inverse(&a)
		p.Mul(&a, &inv)
		return p.IsOne()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNegHalveDouble(t *testing.T) {
	f := func(a Element) bool {
		var n, s Element
		n.Neg(&a)
		s.Add(&a, &n)
		if !s.IsZero() {
			return false
		}
		var d, h Element
		d.Double(&a)
		h.Halve(&d)
		if !h.Equal(&a) {
			return false
		}
		h.Halve(&a)
		d.Double(&h)
		return d.Equal(&a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySerializationRoundTrip(t *testing.T) {
	f := func(a Element) bool {
		b := a.ToBytes()
		var back Element
		if err := back.SetBytes(b); err != nil {
			return false
		}
		return back.Equal(&a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestSetBytesRejectsNonCanonical(t *testing.T) {
	mod := Modulus()
	raw := mod.FillBytes(make([]byte, 32))
	var b [32]byte
	copy(b[:], raw)
	var e Element
	if err := e.SetBytes(b); err == nil {
		t.Fatalf("SetBytes accepted the modulus itself")
	}
	var bad Element
	if err := bad.UnmarshalBinary(make([]byte, 31)); err == nil {
		t.Fatalf("UnmarshalBinary accepted short input")
	}
}

func TestExp(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := randElement(r)
	// Fermat: a^(r-1) == 1 for a != 0.
	var e Element
	e.Exp(&a, new(big.Int).Sub(Modulus(), big.NewInt(1)))
	if !e.IsOne() {
		t.Fatalf("a^(r-1) != 1")
	}
	e.ExpUint64(&a, 5)
	var m Element
	m.Mul(&a, &a)
	m.Mul(&m, &a)
	m.Mul(&m, &a)
	m.Mul(&m, &a)
	if !e.Equal(&m) {
		t.Fatalf("ExpUint64(5) mismatch")
	}
	e.Exp(&a, big.NewInt(-1))
	var inv Element
	inv.Inverse(&a)
	if !e.Equal(&inv) {
		t.Fatalf("Exp(-1) != Inverse")
	}
}

func TestLerp(t *testing.T) {
	f := func(tv, a, b Element) bool {
		var got Element
		got.Lerp(&tv, &a, &b)
		// (1-t)a + tb
		var omt, l, rr Element
		omt.Sub(&one, &tv)
		l.Mul(&omt, &a)
		rr.Mul(&tv, &b)
		l.Add(&l, &rr)
		return got.Equal(&l)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestDivAndSetInt64(t *testing.T) {
	var a, b, c Element
	a.SetInt64(-7)
	b.SetInt64(7)
	c.Add(&a, &b)
	if !c.IsZero() {
		t.Fatalf("-7 + 7 != 0")
	}
	a.SetUint64(42)
	b.SetUint64(6)
	c.Div(&a, &b)
	got, ok := c.Uint64()
	if !ok || got != 7 {
		t.Fatalf("42/6 = %d", got)
	}
	c.Div(&a, &Element{})
	if !c.IsZero() {
		t.Fatalf("x/0 != 0 sentinel")
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []Element{NewElement(1), NewElement(2), NewElement(3)}
	b := []Element{NewElement(10), NewElement(20), NewElement(30)}
	dst := NewVector(3)
	VectorAdd(dst, a, b)
	for i, want := range []uint64{11, 22, 33} {
		got, _ := dst[i].Uint64()
		if got != want {
			t.Fatalf("VectorAdd[%d] = %d", i, got)
		}
	}
	s := NewElement(2)
	VectorScale(dst, &s, a)
	got, _ := dst[2].Uint64()
	if got != 6 {
		t.Fatalf("VectorScale = %d", got)
	}
	sum := VectorSum(a)
	if v, _ := sum.Uint64(); v != 6 {
		t.Fatalf("VectorSum = %d", v)
	}
	ip := InnerProduct(a, b)
	if v, _ := ip.Uint64(); v != 140 {
		t.Fatalf("InnerProduct = %d", v)
	}
	if !VectorEqual(a, a) || VectorEqual(a, b) || VectorEqual(a, a[:2]) {
		t.Fatalf("VectorEqual misbehaves")
	}
}

func TestRandIsReducedAndVaries(t *testing.T) {
	seen := map[Element]bool{}
	for i := 0; i < 16; i++ {
		var e Element
		e.Rand()
		if e.BigInt().Cmp(Modulus()) >= 0 {
			t.Fatalf("Rand produced unreduced value")
		}
		seen[e] = true
	}
	if len(seen) < 2 {
		t.Fatalf("Rand produced suspiciously repeated values")
	}
}

func TestStringAndMarshal(t *testing.T) {
	e := NewElement(123456789)
	if e.String() != "123456789" {
		t.Fatalf("String = %q", e.String())
	}
	data, err := e.MarshalBinary()
	if err != nil || len(data) != 32 {
		t.Fatalf("MarshalBinary: %v len %d", err, len(data))
	}
	var back Element
	if err := back.UnmarshalBinary(data); err != nil || !back.Equal(&e) {
		t.Fatalf("UnmarshalBinary round trip failed: %v", err)
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(42))}
}

func BenchmarkMul(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	x, y := randElement(r), randElement(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(&x, &y)
	}
}

func BenchmarkAdd(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	x, y := randElement(r), randElement(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Add(&x, &y)
	}
}

func BenchmarkInverse(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	x := randElement(r)
	var inv Element
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inv.Inverse(&x)
	}
}
