// Package field implements arithmetic in the 254-bit prime field used by
// BatchZK's ZKP modules.
//
// The modulus is the scalar field of the BN254 curve,
//
//	r = 21888242871839275222246405745257275088548364400416034343698204186575808495617,
//
// the field used by Orion, Arkworks and the other systems the paper
// compares against. Elements are kept in Montgomery form across four 64-bit
// limbs (little-endian), so a multiplication is a 4×4 schoolbook multiply
// followed by a Montgomery reduction — the same representation GPU
// implementations use with 32-bit lanes.
//
// All operations are constant-size (no big.Int on the hot path) and
// allocation-free; Element is a value type.
package field

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"math/bits"
)

// Element is a field element in Montgomery form: the limbs hold a·R mod r
// where R = 2^256. The zero value is the field's zero element.
type Element [4]uint64

// Limbs of the modulus r (little-endian).
const (
	q0 uint64 = 0x43e1f593f0000001
	q1 uint64 = 0x2833e84879b97091
	q2 uint64 = 0xb85045b68181585d
	q3 uint64 = 0x30644e72e131a029
)

// qInvNeg = -r^{-1} mod 2^64, the Montgomery constant.
const qInvNeg uint64 = 0xc2e1f593efffffff

var (
	// qElement is the modulus as limbs, for comparisons.
	qElement = [4]uint64{q0, q1, q2, q3}

	// rSquare = R^2 mod r, used to convert into Montgomery form.
	rSquare = Element{
		0x1bb8e645ae216da7,
		0x53fe3ab1e35c59e3,
		0x8c49833d53bb8085,
		0x0216d0b17f4e44a5,
	}

	// one is 1 in Montgomery form (R mod r).
	one = Element{
		0xac96341c4ffffffb,
		0x36fc76959f60cd29,
		0x666ea36f7879462e,
		0x0e0a77c19a07df2f,
	}

	// Modulus as big.Int for conversions and tests.
	modulus, _ = new(big.Int).SetString(
		"21888242871839275222246405745257275088548364400416034343698204186575808495617", 10)
)

// Bits is the bit length of the modulus.
const Bits = 254

// Bytes is the canonical serialized size of an element.
const Bytes = 32

// Modulus returns a copy of the field modulus.
func Modulus() *big.Int { return new(big.Int).Set(modulus) }

// Zero returns the additive identity.
func Zero() Element { return Element{} }

// One returns the multiplicative identity.
func One() Element { return one }

// NewElement returns v reduced into the field, in Montgomery form.
func NewElement(v uint64) Element {
	var e Element
	e.SetUint64(v)
	return e
}

// SetUint64 sets e to v and returns e.
func (e *Element) SetUint64(v uint64) *Element {
	*e = Element{v}
	return e.toMont()
}

// SetInt64 sets e to v (negative values map to r - |v|) and returns e.
func (e *Element) SetInt64(v int64) *Element {
	if v >= 0 {
		return e.SetUint64(uint64(v))
	}
	e.SetUint64(uint64(-v))
	e.Neg(e)
	return e
}

// SetBigInt sets e to v mod r and returns e.
func (e *Element) SetBigInt(v *big.Int) *Element {
	var t big.Int
	t.Mod(v, modulus)
	*e = Element{}
	words := t.Bits()
	for i, w := range words {
		if i >= 4 {
			break
		}
		e[i] = uint64(w)
	}
	return e.toMont()
}

// SetZero sets e to 0 and returns e.
func (e *Element) SetZero() *Element { *e = Element{}; return e }

// SetOne sets e to 1 and returns e.
func (e *Element) SetOne() *Element { *e = one; return e }

// Set copies x into e and returns e.
func (e *Element) Set(x *Element) *Element { *e = *x; return e }

// IsZero reports whether e is the additive identity.
func (e *Element) IsZero() bool { return e[0]|e[1]|e[2]|e[3] == 0 }

// IsOne reports whether e is the multiplicative identity.
func (e *Element) IsOne() bool { return *e == one }

// Equal reports whether e and x represent the same field element.
func (e *Element) Equal(x *Element) bool { return *e == *x }

// BigInt returns the canonical (non-Montgomery) value of e.
func (e *Element) BigInt() *big.Int {
	c := e.fromMont()
	b := make([]byte, 32)
	binary.BigEndian.PutUint64(b[0:8], c[3])
	binary.BigEndian.PutUint64(b[8:16], c[2])
	binary.BigEndian.PutUint64(b[16:24], c[1])
	binary.BigEndian.PutUint64(b[24:32], c[0])
	return new(big.Int).SetBytes(b)
}

// Uint64 returns the canonical value of e truncated to 64 bits and a flag
// reporting whether e fits in a uint64.
func (e *Element) Uint64() (uint64, bool) {
	c := e.fromMont()
	return c[0], c[1]|c[2]|c[3] == 0
}

// String renders the canonical decimal value.
func (e Element) String() string { return e.BigInt().String() }

// MarshalBinary serializes e canonically as 32 big-endian bytes.
func (e *Element) MarshalBinary() ([]byte, error) {
	b := e.ToBytes()
	return b[:], nil
}

// UnmarshalBinary parses 32 big-endian bytes; values ≥ r are rejected.
func (e *Element) UnmarshalBinary(data []byte) error {
	if len(data) != Bytes {
		return fmt.Errorf("field: invalid length %d, want %d", len(data), Bytes)
	}
	var b [Bytes]byte
	copy(b[:], data)
	return e.SetBytes(b)
}

// ToBytes serializes the canonical value big-endian.
func (e *Element) ToBytes() [Bytes]byte {
	c := e.fromMont()
	var b [Bytes]byte
	binary.BigEndian.PutUint64(b[0:8], c[3])
	binary.BigEndian.PutUint64(b[8:16], c[2])
	binary.BigEndian.PutUint64(b[16:24], c[1])
	binary.BigEndian.PutUint64(b[24:32], c[0])
	return b
}

// ErrNotCanonical is returned when deserializing a value ≥ the modulus.
var ErrNotCanonical = errors.New("field: encoded value is not canonical (≥ modulus)")

// SetBytes sets e from a canonical big-endian encoding.
func (e *Element) SetBytes(b [Bytes]byte) error {
	var c Element
	c[3] = binary.BigEndian.Uint64(b[0:8])
	c[2] = binary.BigEndian.Uint64(b[8:16])
	c[1] = binary.BigEndian.Uint64(b[16:24])
	c[0] = binary.BigEndian.Uint64(b[24:32])
	if !lessThanModulus(&c) {
		return ErrNotCanonical
	}
	*e = *c.toMont()
	return nil
}

// SetBytesWide reduces an arbitrary big-endian byte string modulo r.
// It is used to map hash output into the field.
func (e *Element) SetBytesWide(b []byte) *Element {
	v := new(big.Int).SetBytes(b)
	return e.SetBigInt(v)
}

// Rand sets e to a uniformly random field element using crypto/rand.
func (e *Element) Rand() *Element {
	var b [48]byte // 384 bits: negligible sampling bias after reduction
	if _, err := rand.Read(b[:]); err != nil {
		panic("field: crypto/rand failure: " + err.Error())
	}
	return e.SetBytesWide(b[:])
}

// lessThanModulus reports whether the non-Montgomery limbs c are < r.
func lessThanModulus(c *Element) bool {
	if c[3] != q3 {
		return c[3] < q3
	}
	if c[2] != q2 {
		return c[2] < q2
	}
	if c[1] != q1 {
		return c[1] < q1
	}
	return c[0] < q0
}

// Add sets e = x + y and returns e.
func (e *Element) Add(x, y *Element) *Element {
	var carry uint64
	e[0], carry = bits.Add64(x[0], y[0], 0)
	e[1], carry = bits.Add64(x[1], y[1], carry)
	e[2], carry = bits.Add64(x[2], y[2], carry)
	e[3], carry = bits.Add64(x[3], y[3], carry)
	// The modulus leaves two spare bits, so the sum cannot overflow 256 bits
	// when both inputs are reduced; carry is always 0 here.
	_ = carry
	e.reduce()
	return e
}

// Double sets e = 2x and returns e.
func (e *Element) Double(x *Element) *Element { return e.Add(x, x) }

// Sub sets e = x - y and returns e.
func (e *Element) Sub(x, y *Element) *Element {
	var borrow uint64
	e[0], borrow = bits.Sub64(x[0], y[0], 0)
	e[1], borrow = bits.Sub64(x[1], y[1], borrow)
	e[2], borrow = bits.Sub64(x[2], y[2], borrow)
	e[3], borrow = bits.Sub64(x[3], y[3], borrow)
	if borrow != 0 {
		var c uint64
		e[0], c = bits.Add64(e[0], q0, 0)
		e[1], c = bits.Add64(e[1], q1, c)
		e[2], c = bits.Add64(e[2], q2, c)
		e[3], _ = bits.Add64(e[3], q3, c)
	}
	return e
}

// Neg sets e = -x and returns e.
func (e *Element) Neg(x *Element) *Element {
	if x.IsZero() {
		return e.SetZero()
	}
	var borrow uint64
	e[0], borrow = bits.Sub64(q0, x[0], 0)
	e[1], borrow = bits.Sub64(q1, x[1], borrow)
	e[2], borrow = bits.Sub64(q2, x[2], borrow)
	e[3], _ = bits.Sub64(q3, x[3], borrow)
	return e
}

// reduce subtracts the modulus once if e ≥ r (inputs are < 2r).
func (e *Element) reduce() {
	if !lessThanModulus(e) {
		var b uint64
		e[0], b = bits.Sub64(e[0], q0, 0)
		e[1], b = bits.Sub64(e[1], q1, b)
		e[2], b = bits.Sub64(e[2], q2, b)
		e[3], _ = bits.Sub64(e[3], q3, b)
	}
}

// Mul sets e = x·y (Montgomery product) and returns e.
func (e *Element) Mul(x, y *Element) *Element {
	// CIOS (coarsely integrated operand scanning) Montgomery multiplication.
	var t [5]uint64
	for i := 0; i < 4; i++ {
		// t += x[i] * y
		var carry uint64
		xi := x[i]
		hi, lo := bits.Mul64(xi, y[0])
		var c uint64
		t[0], c = bits.Add64(t[0], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(xi, y[1])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[1], c = bits.Add64(t[1], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(xi, y[2])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[2], c = bits.Add64(t[2], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(xi, y[3])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[3], c = bits.Add64(t[3], lo, 0)
		carry = hi + c

		t[4] += carry

		// Montgomery step: add m·q so the low limb cancels, shift right 64.
		m := t[0] * qInvNeg

		hi, lo = bits.Mul64(m, q0)
		_, c = bits.Add64(t[0], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(m, q1)
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[0], c = bits.Add64(t[1], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(m, q2)
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[1], c = bits.Add64(t[2], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(m, q3)
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[2], c = bits.Add64(t[3], lo, 0)
		carry = hi + c

		t[3], c = bits.Add64(t[4], carry, 0)
		t[4] = c
	}
	e[0], e[1], e[2], e[3] = t[0], t[1], t[2], t[3]
	// t[4] can be at most 1; fold it by subtracting the modulus, which is
	// guaranteed to clear it because the result is < 2r.
	if t[4] != 0 {
		var b uint64
		e[0], b = bits.Sub64(e[0], q0, 0)
		e[1], b = bits.Sub64(e[1], q1, b)
		e[2], b = bits.Sub64(e[2], q2, b)
		e[3], _ = bits.Sub64(e[3], q3, b)
	}
	e.reduce()
	return e
}

// Square sets e = x² and returns e.
func (e *Element) Square(x *Element) *Element { return e.Mul(x, x) }

// toMont converts canonical limbs to Montgomery form in place.
func (e *Element) toMont() *Element { return e.Mul(e, &rSquare) }

// fromMont returns the canonical (non-Montgomery) limbs of e.
func (e *Element) fromMont() Element {
	var r Element
	r.Mul(e, &Element{1})
	return r
}

// Exp sets e = base^k for a big-integer exponent and returns e.
func (e *Element) Exp(base *Element, k *big.Int) *Element {
	if k.Sign() < 0 {
		var inv Element
		inv.Inverse(base)
		return e.Exp(&inv, new(big.Int).Neg(k))
	}
	res := one
	b := *base
	for i := 0; i < k.BitLen(); i++ {
		if k.Bit(i) == 1 {
			res.Mul(&res, &b)
		}
		b.Square(&b)
	}
	*e = res
	return e
}

// ExpUint64 sets e = base^k and returns e.
func (e *Element) ExpUint64(base *Element, k uint64) *Element {
	res := one
	b := *base
	for k != 0 {
		if k&1 == 1 {
			res.Mul(&res, &b)
		}
		b.Square(&b)
		k >>= 1
	}
	*e = res
	return e
}

// Inverse sets e = x^{-1} using Fermat's little theorem (x^{r-2}) and
// returns e. The inverse of zero is defined as zero.
func (e *Element) Inverse(x *Element) *Element {
	if x.IsZero() {
		return e.SetZero()
	}
	exp := new(big.Int).Sub(modulus, big.NewInt(2))
	return e.Exp(x, exp)
}

// Div sets e = x / y and returns e. Division by zero yields zero.
func (e *Element) Div(x, y *Element) *Element {
	var inv Element
	inv.Inverse(y)
	return e.Mul(x, &inv)
}

// Halve sets e = x / 2 and returns e.
func (e *Element) Halve(x *Element) *Element {
	t := *x
	if t[0]&1 == 1 { // odd: add modulus first so the shift stays exact
		var c uint64
		t[0], c = bits.Add64(t[0], q0, 0)
		t[1], c = bits.Add64(t[1], q1, c)
		t[2], c = bits.Add64(t[2], q2, c)
		t[3], c = bits.Add64(t[3], q3, c)
		// shift right by 1 including the carry bit
		t[0] = t[0]>>1 | t[1]<<63
		t[1] = t[1]>>1 | t[2]<<63
		t[2] = t[2]>>1 | t[3]<<63
		t[3] = t[3]>>1 | c<<63
	} else {
		t[0] = t[0]>>1 | t[1]<<63
		t[1] = t[1]>>1 | t[2]<<63
		t[2] = t[2]>>1 | t[3]<<63
		t[3] = t[3] >> 1
	}
	*e = t
	return e
}

// Lerp sets e = (1-t)·a + t·b — the sum-check table-update primitive
// (line 6 of Algorithm 1 in the paper) — and returns e.
func (e *Element) Lerp(t, a, b *Element) *Element {
	var d Element
	d.Sub(b, a)
	d.Mul(&d, t)
	return e.Add(a, &d)
}

// Vector convenience helpers ------------------------------------------------

// NewVector allocates a zero vector of n elements.
func NewVector(n int) []Element { return make([]Element, n) }

// RandVector returns n uniformly random elements.
func RandVector(n int) []Element {
	v := make([]Element, n)
	for i := range v {
		v[i].Rand()
	}
	return v
}

// VectorAdd sets dst[i] = a[i] + b[i]. The slices must have equal length.
func VectorAdd(dst, a, b []Element) {
	for i := range dst {
		dst[i].Add(&a[i], &b[i])
	}
}

// VectorScale sets dst[i] = s·a[i]. The slices must have equal length.
func VectorScale(dst []Element, s *Element, a []Element) {
	for i := range dst {
		dst[i].Mul(s, &a[i])
	}
}

// VectorSum returns Σ v[i].
func VectorSum(v []Element) Element {
	var s Element
	for i := range v {
		s.Add(&s, &v[i])
	}
	return s
}

// InnerProduct returns Σ a[i]·b[i]. The slices must have equal length.
func InnerProduct(a, b []Element) Element {
	var s, t Element
	for i := range a {
		t.Mul(&a[i], &b[i])
		s.Add(&s, &t)
	}
	return s
}

// VectorEqual reports whether two vectors are element-wise equal.
func VectorEqual(a, b []Element) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
