// Package field implements arithmetic in the 254-bit prime field used by
// BatchZK's ZKP modules.
//
// The modulus is the scalar field of the BN254 curve,
//
//	r = 21888242871839275222246405745257275088548364400416034343698204186575808495617,
//
// the field used by Orion, Arkworks and the other systems the paper
// compares against. Elements are kept in Montgomery form across four 64-bit
// limbs (little-endian), so a multiplication is a 4×4 schoolbook multiply
// followed by a Montgomery reduction — the same representation GPU
// implementations use with 32-bit lanes.
//
// All operations are constant-size (no big.Int on the hot path) and
// allocation-free; Element is a value type.
package field

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"math/bits"
)

// Element is a field element in Montgomery form: the limbs hold a·R mod r
// where R = 2^256. The zero value is the field's zero element.
type Element [4]uint64

// Limbs of the modulus r (little-endian).
const (
	q0 uint64 = 0x43e1f593f0000001
	q1 uint64 = 0x2833e84879b97091
	q2 uint64 = 0xb85045b68181585d
	q3 uint64 = 0x30644e72e131a029
)

// qInvNeg = -r^{-1} mod 2^64, the Montgomery constant.
const qInvNeg uint64 = 0xc2e1f593efffffff

var (
	// qElement is the modulus as limbs, for comparisons.
	qElement = [4]uint64{q0, q1, q2, q3}

	// rSquare = R^2 mod r, used to convert into Montgomery form.
	rSquare = Element{
		0x1bb8e645ae216da7,
		0x53fe3ab1e35c59e3,
		0x8c49833d53bb8085,
		0x0216d0b17f4e44a5,
	}

	// one is 1 in Montgomery form (R mod r).
	one = Element{
		0xac96341c4ffffffb,
		0x36fc76959f60cd29,
		0x666ea36f7879462e,
		0x0e0a77c19a07df2f,
	}

	// Modulus as big.Int for conversions and tests.
	modulus, _ = new(big.Int).SetString(
		"21888242871839275222246405745257275088548364400416034343698204186575808495617", 10)
)

// Bits is the bit length of the modulus.
const Bits = 254

// Bytes is the canonical serialized size of an element.
const Bytes = 32

// Modulus returns a copy of the field modulus.
func Modulus() *big.Int { return new(big.Int).Set(modulus) }

// Zero returns the additive identity.
func Zero() Element { return Element{} }

// One returns the multiplicative identity.
func One() Element { return one }

// NewElement returns v reduced into the field, in Montgomery form.
func NewElement(v uint64) Element {
	var e Element
	e.SetUint64(v)
	return e
}

// SetUint64 sets e to v and returns e.
func (e *Element) SetUint64(v uint64) *Element {
	*e = Element{v}
	return e.toMont()
}

// SetInt64 sets e to v (negative values map to r - |v|) and returns e.
func (e *Element) SetInt64(v int64) *Element {
	if v >= 0 {
		return e.SetUint64(uint64(v))
	}
	e.SetUint64(uint64(-v))
	e.Neg(e)
	return e
}

// SetBigInt sets e to v mod r and returns e.
func (e *Element) SetBigInt(v *big.Int) *Element {
	var t big.Int
	t.Mod(v, modulus)
	*e = Element{}
	words := t.Bits()
	for i, w := range words {
		if i >= 4 {
			break
		}
		e[i] = uint64(w)
	}
	return e.toMont()
}

// SetZero sets e to 0 and returns e.
func (e *Element) SetZero() *Element { *e = Element{}; return e }

// SetOne sets e to 1 and returns e.
func (e *Element) SetOne() *Element { *e = one; return e }

// Set copies x into e and returns e.
func (e *Element) Set(x *Element) *Element { *e = *x; return e }

// IsZero reports whether e is the additive identity.
func (e *Element) IsZero() bool { return e[0]|e[1]|e[2]|e[3] == 0 }

// IsOne reports whether e is the multiplicative identity.
func (e *Element) IsOne() bool { return *e == one }

// Equal reports whether e and x represent the same field element.
func (e *Element) Equal(x *Element) bool { return *e == *x }

// BigInt returns the canonical (non-Montgomery) value of e.
func (e *Element) BigInt() *big.Int {
	c := e.fromMont()
	b := make([]byte, 32)
	binary.BigEndian.PutUint64(b[0:8], c[3])
	binary.BigEndian.PutUint64(b[8:16], c[2])
	binary.BigEndian.PutUint64(b[16:24], c[1])
	binary.BigEndian.PutUint64(b[24:32], c[0])
	return new(big.Int).SetBytes(b)
}

// Uint64 returns the canonical value of e truncated to 64 bits and a flag
// reporting whether e fits in a uint64.
func (e *Element) Uint64() (uint64, bool) {
	c := e.fromMont()
	return c[0], c[1]|c[2]|c[3] == 0
}

// String renders the canonical decimal value.
func (e Element) String() string { return e.BigInt().String() }

// MarshalBinary serializes e canonically as 32 big-endian bytes.
func (e *Element) MarshalBinary() ([]byte, error) {
	b := e.ToBytes()
	return b[:], nil
}

// UnmarshalBinary parses 32 big-endian bytes; values ≥ r are rejected.
func (e *Element) UnmarshalBinary(data []byte) error {
	if len(data) != Bytes {
		return fmt.Errorf("field: invalid length %d, want %d", len(data), Bytes)
	}
	var b [Bytes]byte
	copy(b[:], data)
	return e.SetBytes(b)
}

// ToBytes serializes the canonical value big-endian.
func (e *Element) ToBytes() [Bytes]byte {
	c := e.fromMont()
	var b [Bytes]byte
	binary.BigEndian.PutUint64(b[0:8], c[3])
	binary.BigEndian.PutUint64(b[8:16], c[2])
	binary.BigEndian.PutUint64(b[16:24], c[1])
	binary.BigEndian.PutUint64(b[24:32], c[0])
	return b
}

// ErrNotCanonical is returned when deserializing a value ≥ the modulus.
var ErrNotCanonical = errors.New("field: encoded value is not canonical (≥ modulus)")

// SetBytes sets e from a canonical big-endian encoding.
func (e *Element) SetBytes(b [Bytes]byte) error {
	var c Element
	c[3] = binary.BigEndian.Uint64(b[0:8])
	c[2] = binary.BigEndian.Uint64(b[8:16])
	c[1] = binary.BigEndian.Uint64(b[16:24])
	c[0] = binary.BigEndian.Uint64(b[24:32])
	if !lessThanModulus(&c) {
		return ErrNotCanonical
	}
	*e = *c.toMont()
	return nil
}

// SetBytesWide reduces an arbitrary big-endian byte string modulo r.
// It is used to map hash output into the field.
func (e *Element) SetBytesWide(b []byte) *Element {
	v := new(big.Int).SetBytes(b)
	return e.SetBigInt(v)
}

// Rand sets e to a uniformly random field element using crypto/rand.
func (e *Element) Rand() *Element {
	var b [48]byte // 384 bits: negligible sampling bias after reduction
	if _, err := rand.Read(b[:]); err != nil {
		panic("field: crypto/rand failure: " + err.Error())
	}
	return e.SetBytesWide(b[:])
}

// lessThanModulus reports whether the non-Montgomery limbs c are < r.
func lessThanModulus(c *Element) bool {
	if c[3] != q3 {
		return c[3] < q3
	}
	if c[2] != q2 {
		return c[2] < q2
	}
	if c[1] != q1 {
		return c[1] < q1
	}
	return c[0] < q0
}

// Add sets e = x + y and returns e.
func (e *Element) Add(x, y *Element) *Element {
	var carry uint64
	e[0], carry = bits.Add64(x[0], y[0], 0)
	e[1], carry = bits.Add64(x[1], y[1], carry)
	e[2], carry = bits.Add64(x[2], y[2], carry)
	e[3], carry = bits.Add64(x[3], y[3], carry)
	// The modulus leaves two spare bits, so the sum cannot overflow 256 bits
	// when both inputs are reduced; carry is always 0 here.
	_ = carry
	e.reduce()
	return e
}

// Double sets e = 2x and returns e.
func (e *Element) Double(x *Element) *Element { return e.Add(x, x) }

// Sub sets e = x - y and returns e.
func (e *Element) Sub(x, y *Element) *Element {
	var borrow uint64
	e[0], borrow = bits.Sub64(x[0], y[0], 0)
	e[1], borrow = bits.Sub64(x[1], y[1], borrow)
	e[2], borrow = bits.Sub64(x[2], y[2], borrow)
	e[3], borrow = bits.Sub64(x[3], y[3], borrow)
	if borrow != 0 {
		var c uint64
		e[0], c = bits.Add64(e[0], q0, 0)
		e[1], c = bits.Add64(e[1], q1, c)
		e[2], c = bits.Add64(e[2], q2, c)
		e[3], _ = bits.Add64(e[3], q3, c)
	}
	return e
}

// Neg sets e = -x and returns e.
func (e *Element) Neg(x *Element) *Element {
	if x.IsZero() {
		return e.SetZero()
	}
	var borrow uint64
	e[0], borrow = bits.Sub64(q0, x[0], 0)
	e[1], borrow = bits.Sub64(q1, x[1], borrow)
	e[2], borrow = bits.Sub64(q2, x[2], borrow)
	e[3], _ = bits.Sub64(q3, x[3], borrow)
	return e
}

// reduce subtracts the modulus once if e ≥ r (inputs are < 2r).
func (e *Element) reduce() {
	if !lessThanModulus(e) {
		var b uint64
		e[0], b = bits.Sub64(e[0], q0, 0)
		e[1], b = bits.Sub64(e[1], q1, b)
		e[2], b = bits.Sub64(e[2], q2, b)
		e[3], _ = bits.Sub64(e[3], q3, b)
	}
}

// madd0 returns the high limb of a·b + c (the low limb is discarded — it
// is the cancelled Montgomery limb).
func madd0(a, b, c uint64) (hi uint64) {
	var carry, lo uint64
	hi, lo = bits.Mul64(a, b)
	_, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// madd1 returns a·b + c as (hi, lo).
func madd1(a, b, c uint64) (hi, lo uint64) {
	var carry uint64
	hi, lo = bits.Mul64(a, b)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// madd2 returns a·b + c + d as (hi, lo).
func madd2(a, b, c, d uint64) (hi, lo uint64) {
	var carry uint64
	hi, lo = bits.Mul64(a, b)
	c, carry = bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return
}

// madd3 returns a·b + c + d + e·2⁶⁴ as (hi, lo).
func madd3(a, b, c, d, e uint64) (hi, lo uint64) {
	var carry uint64
	hi, lo = bits.Mul64(a, b)
	c, carry = bits.Add64(c, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, e, carry)
	return
}

// Mul sets e = x·y (Montgomery product) and returns e.
//
// The implementation is a fully unrolled fixed-4-limb CIOS with the
// "no-carry" lazy-reduction window: because the modulus's top limb
// q3 < 2⁶², the interleaved accumulator never overflows four limbs, so
// the fifth CIOS limb and its per-round carry bookkeeping disappear and
// the whole product lives in registers. One conditional subtraction at
// the end restores the canonical (< r) representative, keeping results
// bit-identical to MulGeneric.
func (e *Element) Mul(x, y *Element) *Element {
	var t0, t1, t2, t3 uint64
	var c0, c1, c2 uint64
	{
		// round 0
		v := x[0]
		c1, c0 = bits.Mul64(v, y[0])
		m := c0 * qInvNeg
		c2 = madd0(m, q0, c0)
		c1, c0 = madd1(v, y[1], c1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd1(v, y[2], c1)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd1(v, y[3], c1)
		t3, t2 = madd3(m, q3, c0, c2, c1)
	}
	{
		// round 1
		v := x[1]
		c1, c0 = madd1(v, y[0], t0)
		m := c0 * qInvNeg
		c2 = madd0(m, q0, c0)
		c1, c0 = madd2(v, y[1], c1, t1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd2(v, y[2], c1, t2)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd2(v, y[3], c1, t3)
		t3, t2 = madd3(m, q3, c0, c2, c1)
	}
	{
		// round 2
		v := x[2]
		c1, c0 = madd1(v, y[0], t0)
		m := c0 * qInvNeg
		c2 = madd0(m, q0, c0)
		c1, c0 = madd2(v, y[1], c1, t1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd2(v, y[2], c1, t2)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd2(v, y[3], c1, t3)
		t3, t2 = madd3(m, q3, c0, c2, c1)
	}
	{
		// round 3
		v := x[3]
		c1, c0 = madd1(v, y[0], t0)
		m := c0 * qInvNeg
		c2 = madd0(m, q0, c0)
		c1, c0 = madd2(v, y[1], c1, t1)
		c2, t0 = madd2(m, q1, c2, c0)
		c1, c0 = madd2(v, y[2], c1, t2)
		c2, t1 = madd2(m, q2, c2, c0)
		c1, c0 = madd2(v, y[3], c1, t3)
		t3, t2 = madd3(m, q3, c0, c2, c1)
	}
	e[0], e[1], e[2], e[3] = t0, t1, t2, t3
	e.reduce()
	return e
}

// Square sets e = x² and returns e.
//
// Dedicated squaring: the six symmetric partial products x[i]·x[j] (i<j)
// are computed once and doubled by shifting, then the four diagonal
// squares are added and the 512-bit result Montgomery-reduced in four
// unrolled rounds — 26 limb multiplies against Mul's 32.
func (e *Element) Square(x *Element) *Element {
	// Cross products at their column positions; carries between columns
	// belong to the next column, so the two Add64 chains are exact.
	var p1, p2, p3, p4, p5, p6, p7 uint64
	var c uint64
	h01, l01 := bits.Mul64(x[0], x[1])
	h02, l02 := bits.Mul64(x[0], x[2])
	h03, l03 := bits.Mul64(x[0], x[3])
	h12, l12 := bits.Mul64(x[1], x[2])
	h13, l13 := bits.Mul64(x[1], x[3])
	h23, l23 := bits.Mul64(x[2], x[3])

	p1 = l01
	p2, c = bits.Add64(h01, l02, 0)
	p3, c = bits.Add64(h02, l03, c)
	p4, c = bits.Add64(h03, h12, c)
	p5, c = bits.Add64(h13, l23, c)
	p6, c = bits.Add64(h23, 0, c)
	_ = c // cross sum < 2^448, cannot carry out of p6
	p3, c = bits.Add64(p3, l12, 0)
	p4, c = bits.Add64(p4, l13, c)
	p5, c = bits.Add64(p5, 0, c)
	p6, c = bits.Add64(p6, 0, c)
	p7 = c

	// Double the off-diagonal sum (x² = diag + 2·cross).
	p7 = p7<<1 | p6>>63
	p6 = p6<<1 | p5>>63
	p5 = p5<<1 | p4>>63
	p4 = p4<<1 | p3>>63
	p3 = p3<<1 | p2>>63
	p2 = p2<<1 | p1>>63
	p1 <<= 1

	// Add the diagonals x[i]² at columns 2i, 2i+1.
	var t [8]uint64
	var d uint64
	hi, lo := bits.Mul64(x[0], x[0])
	t[0] = lo
	t[1], d = bits.Add64(p1, hi, 0)
	hi, lo = bits.Mul64(x[1], x[1])
	t[2], d = bits.Add64(p2, lo, d)
	t[3], d = bits.Add64(p3, hi, d)
	hi, lo = bits.Mul64(x[2], x[2])
	t[4], d = bits.Add64(p4, lo, d)
	t[5], d = bits.Add64(p5, hi, d)
	hi, lo = bits.Mul64(x[3], x[3])
	t[6], d = bits.Add64(p6, lo, d)
	t[7], _ = bits.Add64(p7, hi, d)

	// Montgomery reduction (SOS): four rounds of t += m·q·2^{64i}; the
	// ripple out of each round cannot overflow t[7] because the final
	// value (x² + Σmᵢ·q·2^{64i})/2²⁵⁶ < 2r < 2²⁵⁵.
	{
		m := t[0] * qInvNeg
		cc := madd0(m, q0, t[0])
		cc, t[1] = madd2(m, q1, cc, t[1])
		cc, t[2] = madd2(m, q2, cc, t[2])
		cc, t[3] = madd2(m, q3, cc, t[3])
		t[4], d = bits.Add64(t[4], cc, 0)
		t[5], d = bits.Add64(t[5], 0, d)
		t[6], d = bits.Add64(t[6], 0, d)
		t[7], _ = bits.Add64(t[7], 0, d)
	}
	{
		m := t[1] * qInvNeg
		cc := madd0(m, q0, t[1])
		cc, t[2] = madd2(m, q1, cc, t[2])
		cc, t[3] = madd2(m, q2, cc, t[3])
		cc, t[4] = madd2(m, q3, cc, t[4])
		t[5], d = bits.Add64(t[5], cc, 0)
		t[6], d = bits.Add64(t[6], 0, d)
		t[7], _ = bits.Add64(t[7], 0, d)
	}
	{
		m := t[2] * qInvNeg
		cc := madd0(m, q0, t[2])
		cc, t[3] = madd2(m, q1, cc, t[3])
		cc, t[4] = madd2(m, q2, cc, t[4])
		cc, t[5] = madd2(m, q3, cc, t[5])
		t[6], d = bits.Add64(t[6], cc, 0)
		t[7], _ = bits.Add64(t[7], 0, d)
	}
	{
		m := t[3] * qInvNeg
		cc := madd0(m, q0, t[3])
		cc, t[4] = madd2(m, q1, cc, t[4])
		cc, t[5] = madd2(m, q2, cc, t[5])
		cc, t[6] = madd2(m, q3, cc, t[6])
		t[7], _ = bits.Add64(t[7], cc, 0)
	}
	e[0], e[1], e[2], e[3] = t[4], t[5], t[6], t[7]
	e.reduce()
	return e
}

// toMont converts canonical limbs to Montgomery form in place.
func (e *Element) toMont() *Element { return e.Mul(e, &rSquare) }

// fromMont returns the canonical (non-Montgomery) limbs of e.
func (e *Element) fromMont() Element {
	var r Element
	r.Mul(e, &Element{1})
	return r
}

// Exp sets e = base^k for a big-integer exponent and returns e.
func (e *Element) Exp(base *Element, k *big.Int) *Element {
	if k.Sign() < 0 {
		var inv Element
		inv.Inverse(base)
		return e.Exp(&inv, new(big.Int).Neg(k))
	}
	res := one
	b := *base
	for i := 0; i < k.BitLen(); i++ {
		if k.Bit(i) == 1 {
			res.Mul(&res, &b)
		}
		b.Square(&b)
	}
	*e = res
	return e
}

// ExpUint64 sets e = base^k and returns e.
func (e *Element) ExpUint64(base *Element, k uint64) *Element {
	res := one
	b := *base
	for k != 0 {
		if k&1 == 1 {
			res.Mul(&res, &b)
		}
		b.Square(&b)
		k >>= 1
	}
	*e = res
	return e
}

// rMinusTwo is the Fermat exponent r−2 as little-endian limbs (only the
// low limb differs from the modulus: q0 ends in …0001, so no borrow).
var rMinusTwo = [4]uint64{q0 - 2, q1, q2, q3}

// rMinusTwoBig returns r−2 for the big.Int reference ladder.
func rMinusTwoBig() *big.Int {
	return new(big.Int).Sub(modulus, big.NewInt(2))
}

// Inverse sets e = x^{-1} using Fermat's little theorem (x^{r−2}) and
// returns e. The inverse of zero is defined as zero.
//
// The exponentiation is a fixed chain over the hardcoded limbs of r−2:
// a 4-bit window table (15 stack elements) followed by 252 squarings and
// one table multiply per non-zero nibble — no big.Int, no allocation,
// and every squaring uses the dedicated Square. The result is the same
// canonical representative the big.Int ladder produces (InverseGeneric),
// which the differential tests pin.
func (e *Element) Inverse(x *Element) *Element {
	if x.IsZero() {
		return e.SetZero()
	}
	var tbl [15]Element // tbl[i] = x^{i+1}
	tbl[0] = *x
	tbl[1].Square(x)
	for i := 2; i < 15; i++ {
		tbl[i].Mul(&tbl[i-1], x)
	}
	res := one
	started := false
	for w := 3; w >= 0; w-- {
		limb := rMinusTwo[w]
		for s := 60; s >= 0; s -= 4 {
			if started {
				res.Square(&res)
				res.Square(&res)
				res.Square(&res)
				res.Square(&res)
			}
			if nib := (limb >> uint(s)) & 0xf; nib != 0 {
				res.Mul(&res, &tbl[nib-1])
				started = true
			}
		}
	}
	*e = res
	return e
}

// Div sets e = x / y and returns e. Division by zero yields zero.
func (e *Element) Div(x, y *Element) *Element {
	var inv Element
	inv.Inverse(y)
	return e.Mul(x, &inv)
}

// Halve sets e = x / 2 and returns e.
func (e *Element) Halve(x *Element) *Element {
	t := *x
	if t[0]&1 == 1 { // odd: add modulus first so the shift stays exact
		var c uint64
		t[0], c = bits.Add64(t[0], q0, 0)
		t[1], c = bits.Add64(t[1], q1, c)
		t[2], c = bits.Add64(t[2], q2, c)
		t[3], c = bits.Add64(t[3], q3, c)
		// shift right by 1 including the carry bit
		t[0] = t[0]>>1 | t[1]<<63
		t[1] = t[1]>>1 | t[2]<<63
		t[2] = t[2]>>1 | t[3]<<63
		t[3] = t[3]>>1 | c<<63
	} else {
		t[0] = t[0]>>1 | t[1]<<63
		t[1] = t[1]>>1 | t[2]<<63
		t[2] = t[2]>>1 | t[3]<<63
		t[3] = t[3] >> 1
	}
	*e = t
	return e
}

// Lerp sets e = (1-t)·a + t·b — the sum-check table-update primitive
// (line 6 of Algorithm 1 in the paper) — and returns e.
func (e *Element) Lerp(t, a, b *Element) *Element {
	var d Element
	d.Sub(b, a)
	d.Mul(&d, t)
	return e.Add(a, &d)
}

// Vector convenience helpers ------------------------------------------------

// NewVector allocates a zero vector of n elements.
func NewVector(n int) []Element { return make([]Element, n) }

// RandVector returns n uniformly random elements.
func RandVector(n int) []Element {
	v := make([]Element, n)
	for i := range v {
		v[i].Rand()
	}
	return v
}

// VectorAdd sets dst[i] = a[i] + b[i]. The slices must have equal length.
func VectorAdd(dst, a, b []Element) {
	for i := range dst {
		dst[i].Add(&a[i], &b[i])
	}
}

// VectorScale sets dst[i] = s·a[i]. The slices must have equal length.
func VectorScale(dst []Element, s *Element, a []Element) {
	for i := range dst {
		dst[i].Mul(s, &a[i])
	}
}

// VectorSum returns Σ v[i].
func VectorSum(v []Element) Element {
	var s Element
	for i := range v {
		s.Add(&s, &v[i])
	}
	return s
}

// InnerProduct returns Σ a[i]·b[i]. The slices must have equal length.
func InnerProduct(a, b []Element) Element {
	var s, t Element
	for i := range a {
		t.Mul(&a[i], &b[i])
		s.Add(&s, &t)
	}
	return s
}

// VectorEqual reports whether two vectors are element-wise equal.
func VectorEqual(a, b []Element) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
