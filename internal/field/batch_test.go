package field

import (
	"testing"
	"testing/quick"
)

func TestBatchInverseMatchesInverse(t *testing.T) {
	v := RandVector(33)
	v[7] = Element{} // a zero in the middle
	v[0] = Element{} // and at the front
	dst := make([]Element, len(v))
	BatchInverse(dst, v)
	for i := range v {
		var want Element
		want.Inverse(&v[i])
		if !dst[i].Equal(&want) {
			t.Fatalf("entry %d: batch inverse mismatch", i)
		}
	}
}

func TestBatchInverseAliased(t *testing.T) {
	v := RandVector(16)
	want := make([]Element, len(v))
	BatchInverse(want, v)
	BatchInverse(v, v) // in place
	if !VectorEqual(v, want) {
		t.Fatal("aliased batch inverse differs")
	}
}

func TestBatchInverseEdges(t *testing.T) {
	BatchInverse(nil, nil) // no-op
	all := make([]Element, 5)
	dst := make([]Element, 5)
	BatchInverse(dst, all) // all zero
	for i := range dst {
		if !dst[i].IsZero() {
			t.Fatal("inverse of zero should be zero")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	BatchInverse(make([]Element, 2), make([]Element, 3))
}

func TestBatchInverseProperty(t *testing.T) {
	f := func(a, b, c Element) bool {
		v := []Element{a, b, c}
		dst := make([]Element, 3)
		BatchInverse(dst, v)
		for i := range v {
			if v[i].IsZero() {
				if !dst[i].IsZero() {
					return false
				}
				continue
			}
			var p Element
			p.Mul(&v[i], &dst[i])
			if !p.IsOne() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPowersOf(t *testing.T) {
	x := NewElement(3)
	p := PowersOf(&x, 5)
	want := []uint64{1, 3, 9, 27, 81}
	for i, w := range want {
		if v, _ := p[i].Uint64(); v != w {
			t.Fatalf("3^%d = %d", i, v)
		}
	}
	if len(PowersOf(&x, 0)) != 0 {
		t.Fatal("n=0 should be empty")
	}
}

func TestLinearCombination(t *testing.T) {
	coeffs := []Element{NewElement(2), NewElement(3)}
	vs := []Element{NewElement(5), NewElement(7)}
	got := LinearCombination(coeffs, vs)
	if v, _ := got.Uint64(); v != 31 {
		t.Fatalf("2·5 + 3·7 = %d", v)
	}
}

func BenchmarkBatchInverse256(b *testing.B) {
	v := RandVector(256)
	dst := make([]Element, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BatchInverse(dst, v)
	}
}

func TestBatchInverseWithScratchMatches(t *testing.T) {
	v := RandVector(29)
	v[0], v[13] = Element{}, Element{} // zeros pass through
	want := make([]Element, len(v))
	BatchInverse(want, v)
	dst := make([]Element, len(v))
	scratch := make([]Element, len(v))
	BatchInverseWithScratch(dst, v, scratch)
	if !VectorEqual(dst, want) {
		t.Fatal("scratch variant differs from BatchInverse")
	}
	// Oversized scratch is fine; reuse must not depend on its contents.
	big := make([]Element, 2*len(v))
	for i := range big {
		big[i] = One()
	}
	BatchInverseWithScratch(dst, v, big)
	if !VectorEqual(dst, want) {
		t.Fatal("dirty oversized scratch changed the result")
	}
}

func TestBatchInverseWithScratchShortScratchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short scratch should panic")
		}
	}()
	v := RandVector(4)
	BatchInverseWithScratch(make([]Element, 4), v, make([]Element, 3))
}

func BenchmarkBatchInverseWithScratch256(b *testing.B) {
	v := RandVector(256)
	dst := make([]Element, 256)
	scratch := make([]Element, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BatchInverseWithScratch(dst, v, scratch)
	}
}
