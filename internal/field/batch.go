package field

// Batch operations used on the hot paths of provers and verifiers.

// BatchInverse sets dst[i] = v[i]^{-1} for all i using Montgomery's trick:
// one field inversion plus 3(n−1) multiplications instead of n inversions.
// Zero entries invert to zero (matching Inverse) and do not disturb the
// other entries. dst and v may alias.
func BatchInverse(dst, v []Element) {
	if len(v) == 0 {
		if len(dst) != len(v) {
			panic("field: BatchInverse length mismatch")
		}
		return
	}
	BatchInverseWithScratch(dst, v, make([]Element, len(v)))
}

// BatchInverseWithScratch is BatchInverse with a caller-provided prefix
// buffer (len(scratch) ≥ len(v)), so hot loops can reuse an arena instead
// of allocating per call. scratch must not alias dst or v; its contents
// are clobbered.
func BatchInverseWithScratch(dst, v, scratch []Element) {
	if len(dst) != len(v) {
		panic("field: BatchInverse length mismatch")
	}
	n := len(v)
	if n == 0 {
		return
	}
	if len(scratch) < n {
		panic("field: BatchInverse scratch too short")
	}
	// Prefix products over the non-zero entries.
	prefix := scratch[:n]
	acc := One()
	for i := 0; i < n; i++ {
		prefix[i] = acc
		if !v[i].IsZero() {
			acc.Mul(&acc, &v[i])
		}
	}
	var inv Element
	inv.Inverse(&acc)
	for i := n - 1; i >= 0; i-- {
		if v[i].IsZero() {
			dst[i] = Element{}
			continue
		}
		vi := v[i] // copy before overwriting when aliased
		dst[i].Mul(&inv, &prefix[i])
		inv.Mul(&inv, &vi)
	}
}

// PowersOf returns [1, x, x², …, x^{n-1}].
func PowersOf(x *Element, n int) []Element {
	out := make([]Element, n)
	if n == 0 {
		return out
	}
	out[0] = One()
	for i := 1; i < n; i++ {
		out[i].Mul(&out[i-1], x)
	}
	return out
}

// LinearCombination returns Σ coeffs[i]·vs[i] over equal-length slices.
func LinearCombination(coeffs, vs []Element) Element {
	return InnerProduct(coeffs, vs)
}
