package field

import "math/bits"

// Reference implementations of the hot arithmetic, kept verbatim from the
// pre-unrolled code. They are not called on any hot path: the differential
// tests pin the unrolled Mul/Square and the fixed-chain Inverse against
// them (and against big.Int), and the field-arith bench section reports
// the ref-vs-new ns/op ratio that make bench-check gates.

// MulGeneric sets e = x·y with the loop-based CIOS Montgomery multiply the
// unrolled Mul replaced. Bit-identical to Mul for all inputs.
func MulGeneric(e, x, y *Element) *Element {
	var t [5]uint64
	for i := 0; i < 4; i++ {
		// t += x[i] * y
		var carry uint64
		xi := x[i]
		hi, lo := bits.Mul64(xi, y[0])
		var c uint64
		t[0], c = bits.Add64(t[0], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(xi, y[1])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[1], c = bits.Add64(t[1], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(xi, y[2])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[2], c = bits.Add64(t[2], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(xi, y[3])
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[3], c = bits.Add64(t[3], lo, 0)
		carry = hi + c

		t[4] += carry

		// Montgomery step: add m·q so the low limb cancels, shift right 64.
		m := t[0] * qInvNeg

		hi, lo = bits.Mul64(m, q0)
		_, c = bits.Add64(t[0], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(m, q1)
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[0], c = bits.Add64(t[1], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(m, q2)
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[1], c = bits.Add64(t[2], lo, 0)
		carry = hi + c

		hi, lo = bits.Mul64(m, q3)
		lo, c = bits.Add64(lo, carry, 0)
		hi += c
		t[2], c = bits.Add64(t[3], lo, 0)
		carry = hi + c

		t[3], c = bits.Add64(t[4], carry, 0)
		t[4] = c
	}
	e[0], e[1], e[2], e[3] = t[0], t[1], t[2], t[3]
	// t[4] can be at most 1; fold it by subtracting the modulus, which is
	// guaranteed to clear it because the result is < 2r.
	if t[4] != 0 {
		var b uint64
		e[0], b = bits.Sub64(e[0], q0, 0)
		e[1], b = bits.Sub64(e[1], q1, b)
		e[2], b = bits.Sub64(e[2], q2, b)
		e[3], _ = bits.Sub64(e[3], q3, b)
	}
	e.reduce()
	return e
}

// SquareGeneric sets e = x² by delegating to MulGeneric — the pre-change
// squaring path, which had no dedicated partial-product sharing.
func SquareGeneric(e, x *Element) *Element { return MulGeneric(e, x, x) }

// InverseGeneric sets e = x^{r−2} via the big.Int-exponent square-and-
// multiply ladder the fixed-chain Inverse replaced. Zero maps to zero.
func InverseGeneric(e, x *Element) *Element {
	if x.IsZero() {
		return e.SetZero()
	}
	exp := rMinusTwoBig()
	res := one
	b := *x
	for i := 0; i < exp.BitLen(); i++ {
		if exp.Bit(i) == 1 {
			MulGeneric(&res, &res, &b)
		}
		MulGeneric(&b, &b, &b)
	}
	*e = res
	return e
}
