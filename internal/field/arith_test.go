package field

import (
	"math/big"
	"testing"
)

// arithEdgeCases returns canonical edge values: the group identities,
// values hugging the modulus from below, the Montgomery radix points, and
// limb patterns that stress every carry chain of the unrolled code.
func arithEdgeCases() []Element {
	bigs := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Sub(modulus, big.NewInt(1)), // r−1
		new(big.Int).Sub(modulus, big.NewInt(2)), // r−2
		new(big.Int).Rsh(modulus, 1),             // (r−1)/2
		new(big.Int).Lsh(big.NewInt(1), 64),      // one limb boundary
		new(big.Int).Lsh(big.NewInt(1), 128),
		new(big.Int).Lsh(big.NewInt(1), 192),
		new(big.Int).Lsh(big.NewInt(1), 253),
		new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 64), big.NewInt(1)),  // 2⁶⁴−1
		new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 128), big.NewInt(1)), // 2¹²⁸−1
		new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 192), big.NewInt(1)), // 2¹⁹²−1
		new(big.Int).Mod(new(big.Int).Lsh(big.NewInt(1), 256), modulus),       // R mod r
		new(big.Int).Mod(new(big.Int).Lsh(big.NewInt(1), 512), modulus),       // R² mod r
	}
	out := make([]Element, 0, len(bigs)+8)
	for _, b := range bigs {
		var e Element
		e.SetBigInt(b)
		out = append(out, e)
	}
	for i := 0; i < 8; i++ {
		var e Element
		e.Rand()
		out = append(out, e)
	}
	return out
}

// TestMulSquareDifferential pins the unrolled Mul and the dedicated
// Square against both the retained loop-CIOS reference and big.Int, over
// the full edge-case cross product.
func TestMulSquareDifferential(t *testing.T) {
	cases := arithEdgeCases()
	for i := range cases {
		for j := range cases {
			x, y := cases[i], cases[j]
			var got, ref Element
			got.Mul(&x, &y)
			MulGeneric(&ref, &x, &y)
			if got != ref {
				t.Fatalf("Mul(%v, %v): unrolled %v != generic %v", x.String(), y.String(), got.String(), ref.String())
			}
			want := new(big.Int).Mul(x.BigInt(), y.BigInt())
			want.Mod(want, modulus)
			if got.BigInt().Cmp(want) != 0 {
				t.Fatalf("Mul(%v, %v) = %v, big.Int wants %v", x.String(), y.String(), got.String(), want)
			}
		}
		x := cases[i]
		var sq, sqRef Element
		sq.Square(&x)
		SquareGeneric(&sqRef, &x)
		if sq != sqRef {
			t.Fatalf("Square(%v): dedicated %v != generic %v", x.String(), sq.String(), sqRef.String())
		}
		want := new(big.Int).Mul(x.BigInt(), x.BigInt())
		want.Mod(want, modulus)
		if sq.BigInt().Cmp(want) != 0 {
			t.Fatalf("Square(%v) = %v, big.Int wants %v", x.String(), sq.String(), want)
		}
	}
}

// TestInverseDifferential pins the fixed-chain Inverse against the
// big.Int-exponent reference ladder and checks x·x⁻¹ = 1.
func TestInverseDifferential(t *testing.T) {
	for _, x := range arithEdgeCases() {
		var got, ref Element
		got.Inverse(&x)
		InverseGeneric(&ref, &x)
		if got != ref {
			t.Fatalf("Inverse(%v): chain %v != generic %v", x.String(), got.String(), ref.String())
		}
		if x.IsZero() {
			if !got.IsZero() {
				t.Fatalf("Inverse(0) = %v, want 0", got.String())
			}
			continue
		}
		var p Element
		p.Mul(&x, &got)
		if !p.IsOne() {
			t.Fatalf("x·Inverse(x) = %v for x = %v", p.String(), x.String())
		}
	}
}

// TestSquareMatchesMulRandom cross-checks Square against Mul on a larger
// random sample than the edge matrix.
func TestSquareMatchesMulRandom(t *testing.T) {
	for i := 0; i < 512; i++ {
		var x, sq, mul Element
		x.Rand()
		sq.Square(&x)
		mul.Mul(&x, &x)
		if sq != mul {
			t.Fatalf("Square != Mul(x,x) for x = %v", x.String())
		}
	}
}

// TestHotPathZeroAllocations is the regression gate for the ISSUE's
// allocation-free contract: every scalar hot-path op, and the batch
// inversion through a caller scratch, must not touch the heap.
func TestHotPathZeroAllocations(t *testing.T) {
	var a, b, out Element
	a.Rand()
	b.Rand()
	checks := []struct {
		name string
		fn   func()
	}{
		{"Mul", func() { out.Mul(&a, &b) }},
		{"Square", func() { out.Square(&a) }},
		{"Add", func() { out.Add(&a, &b) }},
		{"Sub", func() { out.Sub(&a, &b) }},
		{"Inverse", func() { out.Inverse(&a) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s allocates %.1f times per op, want 0", c.name, n)
		}
	}

	const size = 64
	v := RandVector(size)
	dst := make([]Element, size)
	scratch := make([]Element, size)
	if n := testing.AllocsPerRun(20, func() {
		BatchInverseWithScratch(dst, v, scratch)
	}); n != 0 {
		t.Errorf("BatchInverseWithScratch allocates %.1f times per call, want 0", n)
	}
}

func BenchmarkMulGeneric(b *testing.B) {
	var x, y Element
	x.Rand()
	y.Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulGeneric(&x, &x, &y)
	}
}

func BenchmarkSquare(b *testing.B) {
	var x Element
	x.Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Square(&x)
	}
}

func BenchmarkSquareGeneric(b *testing.B) {
	var x Element
	x.Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SquareGeneric(&x, &x)
	}
}

func BenchmarkInverseGeneric(b *testing.B) {
	var x, out Element
	x.Rand()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InverseGeneric(&out, &x)
	}
}
