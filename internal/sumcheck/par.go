package sumcheck

import (
	"batchzk/internal/field"
	"batchzk/internal/par"
)

// Parallel round kernels shared by every sum-check variant (plain,
// product, affine, triple). Each round of Algorithm 1 does two
// data-parallel sweeps over the half table: an evaluation sweep that
// reduces to the round message, and a fold sweep that binds the round
// challenge. Both split into deterministic chunks; the evaluation sweep
// accumulates per-chunk partials and reduces them in chunk order, so the
// proof bytes are bit-identical to the serial prover for any width.

// parallelHalf is the half-table length below which rounds run serially
// (late rounds shrink geometrically; chunking a 64-entry fold costs more
// than the fold). Package var so the bit-identity tests can force the
// parallel path at small sizes.
var parallelHalf = 2048

// roundChunks resolves the chunk count for a half-table sweep. The count
// is pinned before dispatch so a concurrent SetWidth cannot change the
// partial-buffer layout mid-round.
func roundChunks(half int) int {
	if half < parallelHalf {
		return 1
	}
	return par.Chunks(0, half)
}

// halfSums returns (Σ_b table[b], Σ_b table[b+half]) over the low/high
// halves — the plain variant's round message.
func halfSums(s *par.Scratch, table []field.Element) (p1, p2 field.Element) {
	half := len(table) / 2
	k := roundChunks(half)
	if k <= 1 {
		for b := 0; b < half; b++ {
			p1.Add(&p1, &table[b])
			p2.Add(&p2, &table[b+half])
		}
		return
	}
	partials := s.ZeroElements(0, 2*k)
	par.ForChunks(k, half, func(c, lo, hi int) {
		var s1, s2 field.Element
		for b := lo; b < hi; b++ {
			s1.Add(&s1, &table[b])
			s2.Add(&s2, &table[b+half])
		}
		partials[2*c] = s1
		partials[2*c+1] = s2
	})
	for c := 0; c < k; c++ {
		p1.Add(&p1, &partials[2*c])
		p2.Add(&p2, &partials[2*c+1])
	}
	return
}

// reduceSums runs body over deterministic chunks of [0, half), collecting
// `arity` partial sums per chunk and reducing them in chunk order into
// out. body must add its chunk's contribution into out[0..arity).
func reduceSums(s *par.Scratch, half, arity int, out []field.Element, body func(lo, hi int, acc []field.Element)) {
	k := roundChunks(half)
	if k <= 1 {
		body(0, half, out)
		return
	}
	partials := s.ZeroElements(0, arity*k)
	par.ForChunks(k, half, func(c, lo, hi int) {
		body(lo, hi, partials[arity*c:arity*(c+1)])
	})
	for c := 0; c < k; c++ {
		for a := 0; a < arity; a++ {
			out[a].Add(&out[a], &partials[arity*c+a])
		}
	}
}

// foldTables binds the round challenge: table[b] ← lerp(r, table[b],
// table[b+half]) for every table, fused per index. Low-half writes are
// disjoint by index and the high half is read-only during the sweep, so
// any chunking is bit-identical to the serial fold.
func foldTables(r *field.Element, tables ...[]field.Element) {
	half := len(tables[0]) / 2
	w := 0
	if half < parallelHalf {
		w = 1
	}
	par.ForWidth(w, half, func(lo, hi int) {
		for _, tb := range tables {
			for b := lo; b < hi; b++ {
				tb[b].Lerp(r, &tb[b], &tb[b+half])
			}
		}
	})
}
