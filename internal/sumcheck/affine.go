package sumcheck

import (
	"fmt"

	"batchzk/internal/field"
	"batchzk/internal/par"
	"batchzk/internal/poly"
	"batchzk/internal/transcript"
)

// Affine-product sum-check: proves H = Σ_b a(b)·v(b) + c(b) for
// multilinear a, v, c — the per-phase shape of the GKR layer proof
// (Libra's linear-time prover), where a carries the multiplicative wiring
// weights, v the next layer's values, and c the additive wiring terms.
// Round polynomials are degree 2, transmitted as evaluations at 0, 1, 2.

// ProveAffineProduct runs the prover for Σ a·v + c against a caller-
// provided claim (GKR chains claims across phases, so the claim is an
// input, and the prover verifies it internally). It returns the proof,
// the challenge point (x_1..x_n order), and the final table values
// [a(pt), v(pt), c(pt)].
func ProveAffineProduct(a, v, c *poly.Multilinear, claim field.Element, tr *transcript.Transcript) (*ProductProof, []field.Element, [3]field.Element, error) {
	n := a.NumVars()
	if v.NumVars() != n || c.NumVars() != n {
		return nil, nil, [3]field.Element{}, fmt.Errorf("sumcheck: affine arity mismatch %d/%d/%d", n, v.NumVars(), c.NumVars())
	}
	at := append([]field.Element(nil), a.Evals()...)
	vt := append([]field.Element(nil), v.Evals()...)
	ct := append([]field.Element(nil), c.Evals()...)

	var check, t field.Element
	for b := range at {
		t.Mul(&at[b], &vt[b])
		check.Add(&check, &t)
		check.Add(&check, &ct[b])
	}
	if !check.Equal(&claim) {
		return nil, nil, [3]field.Element{}, fmt.Errorf("sumcheck: affine claim does not match the tables")
	}
	tr.AppendUint64("sumcheckA/n", uint64(n))
	tr.AppendElement("sumcheckA/claim", &claim)

	proof := &ProductProof{Rounds: make([]ProductRound, n)}
	challenges := make([]field.Element, n)
	two := field.NewElement(2)
	s := par.GetScratch()
	defer par.PutScratch(s)
	for i := 0; i < n; i++ {
		half := len(at) / 2
		var sums [3]field.Element
		reduceSums(s, half, 3, sums[:], func(lo, hi int, acc []field.Element) {
			var r0, r1, r2, t field.Element
			var a2, v2, c2 field.Element
			for b := lo; b < hi; b++ {
				t.Mul(&at[b], &vt[b])
				r0.Add(&r0, &t)
				r0.Add(&r0, &ct[b])
				t.Mul(&at[b+half], &vt[b+half])
				r1.Add(&r1, &t)
				r1.Add(&r1, &ct[b+half])
				a2.Lerp(&two, &at[b], &at[b+half])
				v2.Lerp(&two, &vt[b], &vt[b+half])
				c2.Lerp(&two, &ct[b], &ct[b+half])
				t.Mul(&a2, &v2)
				r2.Add(&r2, &t)
				r2.Add(&r2, &c2)
			}
			acc[0].Add(&acc[0], &r0)
			acc[1].Add(&acc[1], &r1)
			acc[2].Add(&acc[2], &r2)
		})
		proof.Rounds[i] = ProductRound{At0: sums[0], At1: sums[1], At2: sums[2]}
		tr.AppendElements("sumcheckA/round", sums[:])
		r := tr.ChallengeElement("sumcheckA/r")
		challenges[i] = r
		foldTables(&r, at, vt, ct)
		at, vt, ct = at[:half], vt[:half], ct[:half]
	}
	return proof, reversed(challenges), [3]field.Element{at[0], vt[0], ct[0]}, nil
}

// VerifyAffineProduct checks an affine-product proof against a claim and
// returns the challenge point plus the final claimed value
// a(pt)·v(pt) + c(pt), to be settled externally.
func VerifyAffineProduct(claim field.Element, proof *ProductProof, tr *transcript.Transcript) ([]field.Element, field.Element, error) {
	n := len(proof.Rounds)
	if n == 0 {
		return nil, field.Element{}, fmt.Errorf("sumcheck: empty affine proof")
	}
	tr.AppendUint64("sumcheckA/n", uint64(n))
	tr.AppendElement("sumcheckA/claim", &claim)
	expected := claim
	challenges := make([]field.Element, n)
	for i, rd := range proof.Rounds {
		var sum field.Element
		sum.Add(&rd.At0, &rd.At1)
		if !sum.Equal(&expected) {
			return nil, field.Element{}, fmt.Errorf("%w: affine round %d sum mismatch", ErrReject, i)
		}
		tr.AppendElements("sumcheckA/round", []field.Element{rd.At0, rd.At1, rd.At2})
		r := tr.ChallengeElement("sumcheckA/r")
		challenges[i] = r
		expected = poly.InterpolateEvalAt([]field.Element{rd.At0, rd.At1, rd.At2}, &r)
	}
	return reversed(challenges), expected, nil
}
