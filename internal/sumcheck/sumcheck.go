// Package sumcheck implements the sum-check protocol (§2.3 of the BatchZK
// paper), the module the paper's evaluation identifies as the dominant cost
// of modern ZKP protocols.
//
// The prover follows Algorithm 1 of the paper (Vu et al. [55]): a table A
// of 2^n evaluations is folded over n rounds; round i emits the pair
// (π_i1, π_i2) = (Σ_b A[b], Σ_b A[b+2^{n-i}]) and then updates
// A[b] ← (1−r_i)·A[b] + r_i·A[b+2^{n-i}] with the round challenge r_i.
// Challenges come from a Fiat–Shamir transcript, so the protocol here is
// non-interactive; ProveWithChallenges exposes the interactive core with
// caller-supplied randomness (the form the pipelined GPU module uses, where
// the system derives randomness from Merkle roots, §4).
//
// A degree-2 variant (ProveProduct/VerifyProduct) handles claims of the
// form H = Σ_b f(b)·g(b), which the polynomial commitment uses for
// evaluation proofs.
package sumcheck

import (
	"errors"
	"fmt"

	"batchzk/internal/field"
	"batchzk/internal/par"
	"batchzk/internal/poly"
	"batchzk/internal/transcript"
)

// RoundPair is the message of one sum-check round for a multilinear
// polynomial: the two half-table sums (π_i1, π_i2) of Algorithm 1.
type RoundPair struct {
	P1, P2 field.Element
}

// Proof is a complete sum-check proof: one RoundPair per variable.
type Proof struct {
	Rounds []RoundPair
}

// NumRounds returns the number of rounds (= number of variables).
func (p *Proof) NumRounds() int { return len(p.Rounds) }

// Prove runs the non-interactive sum-check prover for the multilinear
// polynomial m, drawing challenges from tr. It returns the proof, the
// challenge point in x_1..x_n order (ready for Multilinear.Evaluate), and
// the claimed hypercube sum.
//
// Algorithm 1 fixes the *highest-order* variable first, so the challenge
// drawn in round i binds x_{n+1-i}; the returned point is reversed into
// ascending variable order.
func Prove(m *poly.Multilinear, tr *transcript.Transcript) (*Proof, []field.Element, field.Element) {
	n := m.NumVars()
	sum := m.HypercubeSum()
	tr.AppendUint64("sumcheck/n", uint64(n))
	tr.AppendElement("sumcheck/claim", &sum)

	table := append([]field.Element(nil), m.Evals()...)
	proof := &Proof{Rounds: make([]RoundPair, n)}
	challenges := make([]field.Element, n) // round order: binds x_n first
	s := par.GetScratch()
	defer par.PutScratch(s)
	for i := 0; i < n; i++ {
		p1, p2 := halfSums(s, table)
		proof.Rounds[i] = RoundPair{P1: p1, P2: p2}
		tr.AppendElement("sumcheck/p1", &p1)
		tr.AppendElement("sumcheck/p2", &p2)
		r := tr.ChallengeElement("sumcheck/r")
		challenges[i] = r
		foldTables(&r, table)
		table = table[:len(table)/2]
	}
	return proof, reversed(challenges), sum
}

// ProveWithChallenges runs the interactive prover core of Algorithm 1 with
// caller-supplied round randomness (round order: rs[0] binds x_n). It
// returns the proof and the final folded value p(point).
func ProveWithChallenges(m *poly.Multilinear, rs []field.Element) (*Proof, field.Element, error) {
	n := m.NumVars()
	if len(rs) != n {
		return nil, field.Element{}, fmt.Errorf("sumcheck: %d challenges for %d variables", len(rs), n)
	}
	table := append([]field.Element(nil), m.Evals()...)
	proof := &Proof{Rounds: make([]RoundPair, n)}
	s := par.GetScratch()
	defer par.PutScratch(s)
	for i := 0; i < n; i++ {
		p1, p2 := halfSums(s, table)
		proof.Rounds[i] = RoundPair{P1: p1, P2: p2}
		foldTables(&rs[i], table)
		table = table[:len(table)/2]
	}
	return proof, table[0], nil
}

// ErrReject is returned when a proof fails verification.
var ErrReject = errors.New("sumcheck: proof rejected")

// Verify checks a sum-check proof against a claimed sum. It re-derives the
// challenges from an identically initialized transcript, and returns the
// challenge point (x_1..x_n order) together with the final claimed
// evaluation p(point), which the caller must check against the polynomial
// (directly, or via a polynomial-commitment opening).
func Verify(claim field.Element, proof *Proof, tr *transcript.Transcript) ([]field.Element, field.Element, error) {
	n := proof.NumRounds()
	if n == 0 {
		return nil, field.Element{}, fmt.Errorf("sumcheck: empty proof")
	}
	tr.AppendUint64("sumcheck/n", uint64(n))
	tr.AppendElement("sumcheck/claim", &claim)

	expected := claim
	challenges := make([]field.Element, n)
	for i := 0; i < n; i++ {
		rd := proof.Rounds[i]
		var sum field.Element
		sum.Add(&rd.P1, &rd.P2)
		if !sum.Equal(&expected) {
			return nil, field.Element{}, fmt.Errorf("%w: round %d sum mismatch", ErrReject, i)
		}
		tr.AppendElement("sumcheck/p1", &rd.P1)
		tr.AppendElement("sumcheck/p2", &rd.P2)
		r := tr.ChallengeElement("sumcheck/r")
		challenges[i] = r
		// Round polynomial is linear: g(r) = (1-r)·π1 + r·π2.
		expected.Lerp(&r, &rd.P1, &rd.P2)
	}
	return reversed(challenges), expected, nil
}

// VerifyChallenges replays the verifier checks of a proof produced by
// ProveWithChallenges under known randomness, returning the final claimed
// evaluation.
func VerifyChallenges(claim field.Element, proof *Proof, rs []field.Element) (field.Element, error) {
	if len(rs) != proof.NumRounds() {
		return field.Element{}, fmt.Errorf("sumcheck: %d challenges for %d rounds", len(rs), proof.NumRounds())
	}
	expected := claim
	for i, rd := range proof.Rounds {
		var sum field.Element
		sum.Add(&rd.P1, &rd.P2)
		if !sum.Equal(&expected) {
			return field.Element{}, fmt.Errorf("%w: round %d sum mismatch", ErrReject, i)
		}
		expected.Lerp(&rs[i], &rd.P1, &rd.P2)
	}
	return expected, nil
}

// ProductRound is the message of one round of the degree-2 product
// sum-check: the round polynomial's evaluations at 0, 1, 2.
type ProductRound struct {
	At0, At1, At2 field.Element
}

// ProductProof proves H = Σ_b f(b)·g(b) for multilinear f, g.
type ProductProof struct {
	Rounds []ProductRound
}

// ProveProduct runs the degree-2 sum-check prover for Σ f·g. It returns
// the proof, the challenge point (x_1..x_n order), the claimed sum, and the
// final evaluations f(point), g(point) the verifier needs to check
// externally.
func ProveProduct(f, g *poly.Multilinear, tr *transcript.Transcript) (*ProductProof, []field.Element, field.Element, [2]field.Element, error) {
	n := f.NumVars()
	if g.NumVars() != n {
		return nil, nil, field.Element{}, [2]field.Element{}, fmt.Errorf("sumcheck: arity mismatch %d vs %d", n, g.NumVars())
	}
	ft := append([]field.Element(nil), f.Evals()...)
	gt := append([]field.Element(nil), g.Evals()...)

	claim := field.InnerProduct(ft, gt)
	tr.AppendUint64("sumcheck2/n", uint64(n))
	tr.AppendElement("sumcheck2/claim", &claim)

	proof := &ProductProof{Rounds: make([]ProductRound, n)}
	challenges := make([]field.Element, n)
	two := field.NewElement(2)
	s := par.GetScratch()
	defer par.PutScratch(s)
	for i := 0; i < n; i++ {
		half := len(ft) / 2
		var sums [3]field.Element
		reduceSums(s, half, 3, sums[:], func(lo, hi int, acc []field.Element) {
			var at0, at1, at2 field.Element
			var t, f2, g2 field.Element
			for b := lo; b < hi; b++ {
				// g_i(0): x fixed to 0 keeps the low half.
				t.Mul(&ft[b], &gt[b])
				at0.Add(&at0, &t)
				// g_i(1): x fixed to 1 keeps the high half.
				t.Mul(&ft[b+half], &gt[b+half])
				at1.Add(&at1, &t)
				// g_i(2): extrapolate each table linearly to x=2.
				f2.Lerp(&two, &ft[b], &ft[b+half])
				g2.Lerp(&two, &gt[b], &gt[b+half])
				t.Mul(&f2, &g2)
				at2.Add(&at2, &t)
			}
			acc[0].Add(&acc[0], &at0)
			acc[1].Add(&acc[1], &at1)
			acc[2].Add(&acc[2], &at2)
		})
		proof.Rounds[i] = ProductRound{At0: sums[0], At1: sums[1], At2: sums[2]}
		tr.AppendElements("sumcheck2/round", sums[:])
		r := tr.ChallengeElement("sumcheck2/r")
		challenges[i] = r
		foldTables(&r, ft, gt)
		ft, gt = ft[:half], gt[:half]
	}
	return proof, reversed(challenges), claim, [2]field.Element{ft[0], gt[0]}, nil
}

// VerifyProduct checks a product sum-check proof against a claimed sum,
// returning the challenge point and the final claimed product value
// f(point)·g(point) for external checking.
func VerifyProduct(claim field.Element, proof *ProductProof, tr *transcript.Transcript) ([]field.Element, field.Element, error) {
	n := len(proof.Rounds)
	if n == 0 {
		return nil, field.Element{}, fmt.Errorf("sumcheck: empty product proof")
	}
	tr.AppendUint64("sumcheck2/n", uint64(n))
	tr.AppendElement("sumcheck2/claim", &claim)
	expected := claim
	challenges := make([]field.Element, n)
	for i, rd := range proof.Rounds {
		var sum field.Element
		sum.Add(&rd.At0, &rd.At1)
		if !sum.Equal(&expected) {
			return nil, field.Element{}, fmt.Errorf("%w: product round %d sum mismatch", ErrReject, i)
		}
		tr.AppendElements("sumcheck2/round", []field.Element{rd.At0, rd.At1, rd.At2})
		r := tr.ChallengeElement("sumcheck2/r")
		challenges[i] = r
		expected = poly.InterpolateEvalAt([]field.Element{rd.At0, rd.At1, rd.At2}, &r)
	}
	return reversed(challenges), expected, nil
}

func reversed(rs []field.Element) []field.Element {
	out := make([]field.Element, len(rs))
	for i := range rs {
		out[i] = rs[len(rs)-1-i]
	}
	return out
}
