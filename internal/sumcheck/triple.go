package sumcheck

import (
	"fmt"

	"batchzk/internal/field"
	"batchzk/internal/par"
	"batchzk/internal/poly"
	"batchzk/internal/transcript"
)

// TripleRound is the message of one round of the degree-3 sum-check: the
// round polynomial's evaluations at 0, 1, 2, 3.
type TripleRound struct {
	At [4]field.Element
}

// TripleProof proves H = Σ_b e(b)·f(b)·g(b) for multilinear e, f, g — the
// shape of the Hadamard gate-consistency check (e is the eq polynomial,
// f and g the left/right gate-input polynomials).
type TripleProof struct {
	Rounds []TripleRound
}

// ProveTriple runs the degree-3 sum-check prover for Σ e·f·g. It returns
// the proof, the challenge point (x_1..x_n order), the claimed sum, and
// the final evaluations [e(pt), f(pt), g(pt)].
func ProveTriple(e, f, g *poly.Multilinear, tr *transcript.Transcript) (*TripleProof, []field.Element, field.Element, [3]field.Element, error) {
	n := e.NumVars()
	if f.NumVars() != n || g.NumVars() != n {
		return nil, nil, field.Element{}, [3]field.Element{}, fmt.Errorf("sumcheck: arity mismatch %d/%d/%d", n, f.NumVars(), g.NumVars())
	}
	et := append([]field.Element(nil), e.Evals()...)
	ft := append([]field.Element(nil), f.Evals()...)
	gt := append([]field.Element(nil), g.Evals()...)

	var claim, t field.Element
	for b := range et {
		t.Mul(&et[b], &ft[b])
		t.Mul(&t, &gt[b])
		claim.Add(&claim, &t)
	}
	tr.AppendUint64("sumcheck3/n", uint64(n))
	tr.AppendElement("sumcheck3/claim", &claim)

	proof := &TripleProof{Rounds: make([]TripleRound, n)}
	challenges := make([]field.Element, n)
	xs := [4]field.Element{
		field.NewElement(0), field.NewElement(1),
		field.NewElement(2), field.NewElement(3),
	}
	s := par.GetScratch()
	defer par.PutScratch(s)
	for i := 0; i < n; i++ {
		half := len(et) / 2
		var round TripleRound
		reduceSums(s, half, 4, round.At[:], func(lo, hi int, acc []field.Element) {
			var at [4]field.Element
			var ex, fx, gx, t field.Element
			for b := lo; b < hi; b++ {
				for x := 0; x < 4; x++ {
					ex.Lerp(&xs[x], &et[b], &et[b+half])
					fx.Lerp(&xs[x], &ft[b], &ft[b+half])
					gx.Lerp(&xs[x], &gt[b], &gt[b+half])
					t.Mul(&ex, &fx)
					t.Mul(&t, &gx)
					at[x].Add(&at[x], &t)
				}
			}
			for x := 0; x < 4; x++ {
				acc[x].Add(&acc[x], &at[x])
			}
		})
		proof.Rounds[i] = round
		tr.AppendElements("sumcheck3/round", round.At[:])
		r := tr.ChallengeElement("sumcheck3/r")
		challenges[i] = r
		foldTables(&r, et, ft, gt)
		et, ft, gt = et[:half], ft[:half], gt[:half]
	}
	return proof, reversed(challenges), claim, [3]field.Element{et[0], ft[0], gt[0]}, nil
}

// VerifyTriple checks a degree-3 sum-check proof against a claimed sum,
// returning the challenge point and the final claimed product
// e(pt)·f(pt)·g(pt) that the caller must check externally (typically
// evaluating eq(τ, pt) directly and opening f, g through a commitment).
func VerifyTriple(claim field.Element, proof *TripleProof, tr *transcript.Transcript) ([]field.Element, field.Element, error) {
	n := len(proof.Rounds)
	if n == 0 {
		return nil, field.Element{}, fmt.Errorf("sumcheck: empty triple proof")
	}
	tr.AppendUint64("sumcheck3/n", uint64(n))
	tr.AppendElement("sumcheck3/claim", &claim)
	expected := claim
	challenges := make([]field.Element, n)
	for i := range proof.Rounds {
		rd := &proof.Rounds[i]
		var sum field.Element
		sum.Add(&rd.At[0], &rd.At[1])
		if !sum.Equal(&expected) {
			return nil, field.Element{}, fmt.Errorf("%w: triple round %d sum mismatch", ErrReject, i)
		}
		tr.AppendElements("sumcheck3/round", rd.At[:])
		r := tr.ChallengeElement("sumcheck3/r")
		challenges[i] = r
		expected = poly.InterpolateEvalAt(rd.At[:], &r)
	}
	return reversed(challenges), expected, nil
}
