package sumcheck

import (
	"errors"
	"testing"

	"batchzk/internal/field"
	"batchzk/internal/poly"
	"batchzk/internal/transcript"
)

func TestTripleProveVerify(t *testing.T) {
	for _, n := range []int{1, 3, 7} {
		e := poly.RandMultilinear(n)
		f := poly.RandMultilinear(n)
		g := poly.RandMultilinear(n)
		proof, point, claim, finals, err := ProveTriple(e, f, g, transcript.New("sc3"))
		if err != nil {
			t.Fatal(err)
		}
		// Claim must be Σ e·f·g.
		var want, tt field.Element
		for b := range e.Evals() {
			tt.Mul(&e.Evals()[b], &f.Evals()[b])
			tt.Mul(&tt, &g.Evals()[b])
			want.Add(&want, &tt)
		}
		if !claim.Equal(&want) {
			t.Fatal("claim mismatch")
		}
		gotPoint, finalProd, err := VerifyTriple(claim, proof, transcript.New("sc3"))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !field.VectorEqual(point, gotPoint) {
			t.Fatal("challenge point mismatch")
		}
		ee, _ := e.Evaluate(gotPoint)
		fe, _ := f.Evaluate(gotPoint)
		ge, _ := g.Evaluate(gotPoint)
		var prod field.Element
		prod.Mul(&ee, &fe)
		prod.Mul(&prod, &ge)
		if !prod.Equal(&finalProd) {
			t.Fatalf("n=%d: final product mismatch", n)
		}
		if !ee.Equal(&finals[0]) || !fe.Equal(&finals[1]) || !ge.Equal(&finals[2]) {
			t.Fatal("prover finals mismatch")
		}
	}
}

func TestTripleWithEqPolynomial(t *testing.T) {
	// The Hadamard-check shape: Σ_b eq(τ,b)·f(b)·g(b) = (f∘g)~(τ).
	n := 5
	f := poly.RandMultilinear(n)
	g := poly.RandMultilinear(n)
	tau := field.RandVector(n)
	eqTable, _ := poly.NewMultilinear(poly.EqTable(tau))

	proof, _, claim, _, err := ProveTriple(eqTable, f, g, transcript.New("had"))
	if err != nil {
		t.Fatal(err)
	}
	// claim must equal the MLE of the pointwise product at τ.
	prodEvals := make([]field.Element, 1<<n)
	for b := range prodEvals {
		prodEvals[b].Mul(&f.Evals()[b], &g.Evals()[b])
	}
	fg, _ := poly.NewMultilinear(prodEvals)
	want, _ := fg.Evaluate(tau)
	if !claim.Equal(&want) {
		t.Fatal("Σ eq·f·g != (f∘g)~(τ)")
	}

	// Verify, then check the final value using the closed-form eq
	// evaluation (what the real verifier does — no eq table needed).
	pt, finalProd, err := VerifyTriple(claim, proof, transcript.New("had"))
	if err != nil {
		t.Fatal(err)
	}
	eqAt, err := poly.EqEval(tau, pt)
	if err != nil {
		t.Fatal(err)
	}
	fe, _ := f.Evaluate(pt)
	ge, _ := g.Evaluate(pt)
	var prod field.Element
	prod.Mul(&eqAt, &fe)
	prod.Mul(&prod, &ge)
	if !prod.Equal(&finalProd) {
		t.Fatal("closed-form eq check failed")
	}
}

func TestTripleRejections(t *testing.T) {
	e := poly.RandMultilinear(4)
	f := poly.RandMultilinear(4)
	g := poly.RandMultilinear(4)
	proof, _, claim, _, _ := ProveTriple(e, f, g, transcript.New("sc3"))

	var bad field.Element
	bad.Add(&claim, &[]field.Element{field.One()}[0])
	if _, _, err := VerifyTriple(bad, proof, transcript.New("sc3")); !errors.Is(err, ErrReject) {
		t.Fatalf("wrong claim accepted: %v", err)
	}
	if _, _, err := VerifyTriple(claim, &TripleProof{}, transcript.New("sc3")); err == nil {
		t.Fatal("empty proof accepted")
	}
	h := poly.RandMultilinear(5)
	if _, _, _, _, err := ProveTriple(e, f, h, transcript.New("sc3")); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, _, _, _, err := ProveTriple(e, h, f, transcript.New("sc3")); err == nil {
		t.Fatal("arity mismatch accepted (middle)")
	}

	tampered := &TripleProof{Rounds: append([]TripleRound{}, proof.Rounds...)}
	tampered.Rounds[1].At[3].Add(&tampered.Rounds[1].At[3], &claim)
	pt, finalProd, err := VerifyTriple(claim, tampered, transcript.New("sc3"))
	if err == nil {
		// Must be caught at the external final check.
		ee, _ := e.Evaluate(pt)
		fe, _ := f.Evaluate(pt)
		ge, _ := g.Evaluate(pt)
		var prod field.Element
		prod.Mul(&ee, &fe)
		prod.Mul(&prod, &ge)
		if prod.Equal(&finalProd) {
			t.Fatal("tampered round escaped detection")
		}
	}
}

func TestEqEvalMatchesTable(t *testing.T) {
	z := field.RandVector(4)
	y := field.RandVector(4)
	table, _ := poly.NewMultilinear(poly.EqTable(z))
	want, _ := table.Evaluate(y)
	got, err := poly.EqEval(z, y)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(&want) {
		t.Fatal("EqEval != table evaluation")
	}
	if _, err := poly.EqEval(z, y[:2]); err == nil {
		t.Fatal("accepted arity mismatch")
	}
}
