package sumcheck

import (
	"errors"
	"testing"

	"batchzk/internal/field"
	"batchzk/internal/poly"
	"batchzk/internal/transcript"
)

func TestProveVerifyRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10} {
		m := poly.RandMultilinear(n)
		proof, point, claim := Prove(m, transcript.New("sc"))
		if proof.NumRounds() != n {
			t.Fatalf("n=%d rounds=%d", n, proof.NumRounds())
		}
		gotPoint, final, err := Verify(claim, proof, transcript.New("sc"))
		if err != nil {
			t.Fatalf("n=%d verify: %v", n, err)
		}
		if !field.VectorEqual(point, gotPoint) {
			t.Fatalf("n=%d verifier challenges differ from prover", n)
		}
		// The verifier's final claim must equal p at the challenge point.
		eval, err := m.Evaluate(gotPoint)
		if err != nil {
			t.Fatal(err)
		}
		if !eval.Equal(&final) {
			t.Fatalf("n=%d final evaluation mismatch", n)
		}
	}
}

func TestVerifyRejectsWrongClaim(t *testing.T) {
	m := poly.RandMultilinear(6)
	proof, _, claim := Prove(m, transcript.New("sc"))
	var bad field.Element
	bad.Add(&claim, &[]field.Element{field.One()}[0])
	if _, _, err := Verify(bad, proof, transcript.New("sc")); !errors.Is(err, ErrReject) {
		t.Fatalf("wrong claim accepted: %v", err)
	}
}

func TestVerifyRejectsTamperedRound(t *testing.T) {
	m := poly.RandMultilinear(6)
	proof, _, claim := Prove(m, transcript.New("sc"))
	for round := 0; round < 6; round += 2 {
		tampered := &Proof{Rounds: append([]RoundPair{}, proof.Rounds...)}
		tampered.Rounds[round].P1.Add(&tampered.Rounds[round].P1, &[]field.Element{field.One()}[0])
		_, final, err := Verify(claim, tampered, transcript.New("sc"))
		if err == nil {
			// Tampering a single P1 in a way that preserves P1+P2 is not
			// possible here (we only changed P1), so sums must mismatch —
			// except in round > 0 where the expected value also shifts.
			// In every case a final-evaluation check must fail:
			pt, _, _ := Verify(claim, tampered, transcript.New("sc"))
			eval, _ := m.Evaluate(pt)
			if eval.Equal(&final) {
				t.Fatalf("round %d tampering passed all checks", round)
			}
		}
	}
	if _, _, err := Verify(claim, &Proof{}, transcript.New("sc")); err == nil {
		t.Fatal("empty proof accepted")
	}
}

func TestSoundnessAgainstWrongPolynomial(t *testing.T) {
	// A prover committing to p but claiming the sum of q should be caught
	// when the verifier checks the final evaluation against p.
	m := poly.RandMultilinear(5)
	q := poly.RandMultilinear(5)
	proof, _, _ := Prove(m, transcript.New("sc"))
	wrongClaim := q.HypercubeSum()
	_, _, err := Verify(wrongClaim, proof, transcript.New("sc"))
	if err == nil {
		t.Fatal("first-round sum check should already fail for a wrong claim")
	}
}

func TestProveWithChallenges(t *testing.T) {
	m := poly.RandMultilinear(7)
	rs := field.RandVector(7)
	proof, final, err := ProveWithChallenges(m, rs)
	if err != nil {
		t.Fatal(err)
	}
	claim := m.HypercubeSum()
	got, err := VerifyChallenges(claim, proof, rs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(&final) {
		t.Fatal("verifier final value != prover folded value")
	}
	// Cross-check against direct evaluation at the reversed point.
	eval, _ := m.Evaluate(reversed(rs))
	if !eval.Equal(&final) {
		t.Fatal("folded value != polynomial evaluation")
	}
	if _, _, err := ProveWithChallenges(m, rs[:3]); err == nil {
		t.Fatal("accepted wrong challenge count")
	}
	if _, err := VerifyChallenges(claim, proof, rs[:3]); err == nil {
		t.Fatal("VerifyChallenges accepted wrong challenge count")
	}
	var badClaim field.Element
	badClaim.Add(&claim, &rs[0])
	if _, err := VerifyChallenges(badClaim, proof, rs); !errors.Is(err, ErrReject) {
		t.Fatalf("wrong claim accepted: %v", err)
	}
}

func TestAlgorithm1Semantics(t *testing.T) {
	// Hand-check Algorithm 1 on a tiny instance: n=2,
	// A = [a0, a1, a2, a3], challenges r1 (binds x2), r2 (binds x1).
	a := []field.Element{field.NewElement(3), field.NewElement(5), field.NewElement(7), field.NewElement(11)}
	m, _ := poly.NewMultilinear(append([]field.Element{}, a...))
	rs := []field.Element{field.NewElement(2), field.NewElement(9)}
	proof, final, err := ProveWithChallenges(m, rs)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: π11 = a0+a1 = 8, π12 = a2+a3 = 18.
	if v, _ := proof.Rounds[0].P1.Uint64(); v != 8 {
		t.Fatalf("π11 = %d", v)
	}
	if v, _ := proof.Rounds[0].P2.Uint64(); v != 18 {
		t.Fatalf("π12 = %d", v)
	}
	// Table update with r1=2: A[b] = (1-2)A[b] + 2A[b+2] = 2A[b+2]-A[b].
	// A' = [2·7-3, 2·11-5] = [11, 17]; round 2: π21 = 11, π22 = 17.
	if v, _ := proof.Rounds[1].P1.Uint64(); v != 11 {
		t.Fatalf("π21 = %d", v)
	}
	if v, _ := proof.Rounds[1].P2.Uint64(); v != 17 {
		t.Fatalf("π22 = %d", v)
	}
	// Final: (1-9)·11 + 9·17 = -88 + 153 = 65.
	if v, _ := final.Uint64(); v != 65 {
		t.Fatalf("final = %d", v)
	}
}

func TestProductProveVerify(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		f := poly.RandMultilinear(n)
		g := poly.RandMultilinear(n)
		proof, point, claim, finals, err := ProveProduct(f, g, transcript.New("sc2"))
		if err != nil {
			t.Fatal(err)
		}
		// Claim must be the true inner product.
		want := field.InnerProduct(f.Evals(), g.Evals())
		if !claim.Equal(&want) {
			t.Fatal("claim != inner product")
		}
		gotPoint, finalProd, err := VerifyProduct(claim, proof, transcript.New("sc2"))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !field.VectorEqual(point, gotPoint) {
			t.Fatal("challenge mismatch")
		}
		// finalProd must equal f(point)·g(point), and match the prover's
		// reported finals.
		fe, _ := f.Evaluate(gotPoint)
		ge, _ := g.Evaluate(gotPoint)
		var prod field.Element
		prod.Mul(&fe, &ge)
		if !prod.Equal(&finalProd) {
			t.Fatalf("n=%d final product mismatch", n)
		}
		if !fe.Equal(&finals[0]) || !ge.Equal(&finals[1]) {
			t.Fatal("prover finals mismatch")
		}
	}
}

func TestProductRejections(t *testing.T) {
	f := poly.RandMultilinear(4)
	g := poly.RandMultilinear(4)
	proof, _, claim, _, _ := ProveProduct(f, g, transcript.New("sc2"))

	var bad field.Element
	bad.Add(&claim, &[]field.Element{field.One()}[0])
	if _, _, err := VerifyProduct(bad, proof, transcript.New("sc2")); !errors.Is(err, ErrReject) {
		t.Fatalf("wrong product claim accepted: %v", err)
	}
	if _, _, err := VerifyProduct(claim, &ProductProof{}, transcript.New("sc2")); err == nil {
		t.Fatal("empty product proof accepted")
	}
	h := poly.RandMultilinear(5)
	if _, _, _, _, err := ProveProduct(f, h, transcript.New("sc2")); err == nil {
		t.Fatal("arity mismatch accepted")
	}

	tampered := &ProductProof{Rounds: append([]ProductRound{}, proof.Rounds...)}
	tampered.Rounds[2].At2.Add(&tampered.Rounds[2].At2, &claim)
	pt, finalProd, err := VerifyProduct(claim, tampered, transcript.New("sc2"))
	if err == nil {
		fe, _ := f.Evaluate(pt)
		ge, _ := g.Evaluate(pt)
		var prod field.Element
		prod.Mul(&fe, &ge)
		if prod.Equal(&finalProd) {
			t.Fatal("tampered At2 escaped detection")
		}
	}
}

func TestDeterministicProofs(t *testing.T) {
	evals := field.RandVector(32)
	m1, _ := poly.NewMultilinear(append([]field.Element{}, evals...))
	m2, _ := poly.NewMultilinear(append([]field.Element{}, evals...))
	p1, _, _ := Prove(m1, transcript.New("sc"))
	p2, _, _ := Prove(m2, transcript.New("sc"))
	for i := range p1.Rounds {
		if p1.Rounds[i] != p2.Rounds[i] {
			t.Fatal("proofs are not deterministic")
		}
	}
}

func BenchmarkProve(b *testing.B) {
	for _, n := range []int{12, 16} {
		m := poly.RandMultilinear(n)
		b.Run(sizeName(n), func(b *testing.B) {
			rs := field.RandVector(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ProveWithChallenges(m, rs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	return "n=" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}
