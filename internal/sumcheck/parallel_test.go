package sumcheck

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"

	"batchzk/internal/field"
	"batchzk/internal/par"
	"batchzk/internal/poly"
	"batchzk/internal/transcript"
)

// Parallel-vs-serial bit-identity for every prover variant: round
// messages are chunk-ordered reductions and folds write disjoint
// indices, so the proof structs (and hence the Fiat–Shamir challenges)
// must be byte-identical at any width. Odd half-table splits occur
// naturally as the tables shrink: 2^5 → halves 16, 8, 4, 2, 1.

func lowerGrain(t *testing.T) {
	t.Helper()
	old := parallelHalf
	parallelHalf = 1
	t.Cleanup(func() {
		parallelHalf = old
		par.SetWidth(0)
	})
}

func randMultilinearFrom(rng *rand.Rand, n int) *poly.Multilinear {
	evals := make([]field.Element, 1<<n)
	for i := range evals {
		var b [64]byte
		rng.Read(b[:])
		evals[i].SetBytesWide(b[:])
	}
	m, err := poly.NewMultilinear(evals)
	if err != nil {
		panic(err)
	}
	return m
}

func TestProveBitIdenticalAcrossWidths(t *testing.T) {
	lowerGrain(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMultilinearFrom(rng, 5)
		var want *Proof
		for wi, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			par.SetWidth(w)
			proof, _, _ := Prove(m.Clone(), transcript.New("sc"))
			if wi == 0 {
				want = proof
			} else if !reflect.DeepEqual(proof, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestProveProductBitIdenticalAcrossWidths(t *testing.T) {
	lowerGrain(t)
	rng := rand.New(rand.NewSource(42))
	f := randMultilinearFrom(rng, 5)
	g := randMultilinearFrom(rng, 5)
	par.SetWidth(1)
	want, _, _, _, err := ProveProduct(f, g, transcript.New("sc2"))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		par.SetWidth(w)
		got, _, _, _, err := ProveProduct(f, g, transcript.New("sc2"))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("width %d: product proof differs from serial", w)
		}
	}
}

func TestProveAffineBitIdenticalAcrossWidths(t *testing.T) {
	lowerGrain(t)
	rng := rand.New(rand.NewSource(43))
	a := randMultilinearFrom(rng, 5)
	v := randMultilinearFrom(rng, 5)
	c := randMultilinearFrom(rng, 5)
	var claim, tmp field.Element
	at, vt, ct := a.Evals(), v.Evals(), c.Evals()
	for b := range at {
		tmp.Mul(&at[b], &vt[b])
		claim.Add(&claim, &tmp)
		claim.Add(&claim, &ct[b])
	}
	par.SetWidth(1)
	want, _, _, err := ProveAffineProduct(a, v, c, claim, transcript.New("scA"))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		par.SetWidth(w)
		got, _, _, err := ProveAffineProduct(a, v, c, claim, transcript.New("scA"))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("width %d: affine proof differs from serial", w)
		}
	}
}

func TestProveTripleBitIdenticalAcrossWidths(t *testing.T) {
	lowerGrain(t)
	rng := rand.New(rand.NewSource(44))
	e := randMultilinearFrom(rng, 5)
	f := randMultilinearFrom(rng, 5)
	g := randMultilinearFrom(rng, 5)
	par.SetWidth(1)
	want, _, _, _, err := ProveTriple(e, f, g, transcript.New("sc3"))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
		par.SetWidth(w)
		got, _, _, _, err := ProveTriple(e, f, g, transcript.New("sc3"))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("width %d: triple proof differs from serial", w)
		}
	}
}
