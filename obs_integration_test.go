package batchzk

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// End-to-end operations-layer tests: a real batch prover under injected
// chaos must storm the quarantine path, raise a structured critical
// alert, flip /readyz to not-ready, and recover once the storm passes —
// while a clean run of the same pipeline must raise nothing at all.

// syncWriter serializes concurrent slog writes from the pipeline
// goroutines into one buffer.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// obsStatus fetches one operator endpoint and decodes its JSON body.
func obsStatus(t *testing.T, base, path string, v any) int {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

func proverForObs(t *testing.T) (*BatchProver, []Job) {
	t.Helper()
	c, err := RandomCircuit(64, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	params, err := Setup(c)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := NewBatchProver(c, params, 4)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{ID: i, Public: RandVector(2), Secret: RandVector(2)}
	}
	return bp, jobs
}

// TestObsChaosStormFlipsReadyzAndRecovers is the PR's chaos acceptance
// gate: with every stage attempt failing, the dead-letter storm must
// raise at least one structured critical alert and flip /readyz to 503;
// after the storm ages out of the fast window and clean jobs flow, the
// alert clears and readiness returns.
func TestObsChaosStormFlipsReadyzAndRecovers(t *testing.T) {
	prev := ActiveObs()
	var clockNs atomic.Int64
	clockNs.Store(int64(time.Hour))
	logOut := &syncWriter{}
	eng := NewObsEngine(ObsConfig{
		LogOutput:       logOut,
		MinJudgeSamples: 4,
		Sentinel:        ObsSentinelConfig{RaiseAfter: 2, ClearAfter: 2},
		Now:             func() time.Time { return time.Unix(0, clockNs.Load()) },
	})
	EnableObs(eng)
	defer EnableObs(prev)
	srv := httptest.NewServer(ObsHandler())
	defer srv.Close()

	if code := obsStatus(t, srv.URL, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("initial /readyz = %d, want 200", code)
	}

	bp, jobs := proverForObs(t)
	inj, err := ParseFaultSpec("kernel=1", 7)
	if err != nil {
		t.Fatal(err)
	}
	bp.SetResilience(&Resilience{
		Retry:    RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond},
		Injector: inj,
		Sleep:    func(time.Duration) {},
	})
	for _, r := range bp.ProveBatch(jobs) {
		if r.Err == nil {
			t.Fatal("chaos run produced a successful proof at fault rate 1.0")
		}
	}
	if q := len(bp.Quarantined()); q != len(jobs) {
		t.Fatalf("quarantined %d of %d jobs", q, len(jobs))
	}

	var ready struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if code := obsStatus(t, srv.URL, "/readyz", &ready); code != http.StatusServiceUnavailable || ready.Ready {
		t.Fatalf("/readyz during storm = %d ready=%v, want 503 not-ready", code, ready.Ready)
	}
	if ready.Reason == "" {
		t.Fatal("not-ready response carries no reason")
	}
	snap := eng.Snapshot()
	if snap.AlertsTotal < 1 || len(snap.ActiveAlerts) < 1 {
		t.Fatalf("storm raised %d alerts (%d active), want >= 1", snap.AlertsTotal, len(snap.ActiveAlerts))
	}
	var storm, critical bool
	for _, a := range snap.ActiveAlerts {
		if a.Severity == ObsSeverityCritical {
			critical = true
		}
		if a.Kind == "quarantine-storm" {
			storm = true
		}
	}
	if !critical || !storm {
		t.Fatalf("want a critical quarantine-storm alert among %+v", snap.ActiveAlerts)
	}
	logged := logOut.String()
	for _, want := range []string{"job.quarantined", "stage.retry", "alert.raised", `"component":"core"`} {
		if !strings.Contains(logged, want) {
			t.Fatalf("event log missing %q:\n%s", want, logged)
		}
	}

	// Recovery: the storm ages out of the fast window, clean jobs flow,
	// and the hysteresis clears the alert.
	clockNs.Add(int64(15 * time.Second))
	clean, cleanJobs := proverForObs(t)
	for _, r := range clean.ProveBatch(cleanJobs) {
		if r.Err != nil {
			t.Fatalf("recovery run failed: %v", r.Err)
		}
	}
	if code := obsStatus(t, srv.URL, "/readyz", &ready); code != http.StatusOK || !ready.Ready {
		t.Fatalf("/readyz after recovery = %d ready=%v, want 200 ready", code, ready.Ready)
	}
	// The storm and burn alerts must clear. A warning-level stage
	// regression may legitimately remain: the chaos run's fail-fast
	// stages dragged the EWMA baselines down, so the first real work
	// afterwards reads as slow until the baselines re-learn.
	for _, a := range eng.Snapshot().ActiveAlerts {
		if a.Severity == ObsSeverityCritical {
			t.Fatalf("critical alert still active after recovery: %+v", a)
		}
	}
	if !strings.Contains(logOut.String(), "alert.cleared") {
		t.Fatal("event log has no alert.cleared record")
	}
}

// TestObsCleanRunRaisesNoAlerts is the other half of the acceptance
// gate: the same pipeline without injected faults must complete with
// zero alerts and an untouched readiness surface.
func TestObsCleanRunRaisesNoAlerts(t *testing.T) {
	prev := ActiveObs()
	logOut := &syncWriter{}
	eng := NewObsEngine(ObsConfig{LogOutput: logOut})
	EnableObs(eng)
	defer EnableObs(prev)
	srv := httptest.NewServer(ObsHandler())
	defer srv.Close()

	bp, jobs := proverForObs(t)
	for i, r := range bp.ProveBatch(jobs) {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	snap := eng.Snapshot()
	if snap.AlertsTotal != 0 || len(snap.ActiveAlerts) != 0 {
		t.Fatalf("clean run raised %d alerts: %+v", snap.AlertsTotal, snap.ActiveAlerts)
	}
	if snap.Jobs.Total != int64(len(jobs)) || snap.Jobs.Failed != 0 || snap.Jobs.Quarantined != 0 {
		t.Fatalf("job counters off: %+v", snap.Jobs)
	}
	if code := obsStatus(t, srv.URL, "/readyz", nil); code != http.StatusOK {
		t.Fatalf("/readyz after clean run = %d, want 200", code)
	}
	if logged := logOut.String(); strings.Contains(logged, "alert.raised") || strings.Contains(logged, "job.quarantined") {
		t.Fatalf("clean run logged failure events:\n%s", logged)
	}
}
