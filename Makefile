GO ?= go

.PHONY: build test race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Exercise the concurrency-sensitive layers (batch prover stage workers,
# pipelined module schedules, telemetry registry/tracer) under the race
# detector.
race:
	$(GO) test -race ./internal/core/... ./internal/pipeline/... ./internal/telemetry/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run NONE -bench . -benchtime 1x ./...
