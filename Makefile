GO ?= go

# Scenario and output directory for the bench-report targets.
SCENARIO ?= quickstart
REPORT_DIR ?= .

# Per-target budget for the fuzz smoke (see `make fuzz`).
FUZZTIME ?= 10s

.PHONY: build test race vet bench bench-report bench-sched bench-kernels bench-mem bench-service bench-check roofline fuzz check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Exercise the concurrency-sensitive layers (batch prover stage workers,
# pipelined module schedules, fault injector, telemetry registry/tracer)
# under the race detector.
race:
	$(GO) test -race ./internal/core/... ./internal/pipeline/... ./internal/telemetry/... ./internal/faults/... ./internal/gpusim/... \
		./internal/par/... ./internal/merkle/... ./internal/encoder/... ./internal/sumcheck/... ./internal/ntt/... ./internal/pcs/... ./internal/msm/... \
		./internal/service/... ./internal/protocol/... ./internal/field/... ./internal/fp/... ./internal/curve/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run NONE -bench . -benchtime 1x ./...

# Regenerate BENCH_$(SCENARIO).json (plus the profiler's text report on
# stdout). Override SCENARIO/REPORT_DIR to target other workloads.
bench-report:
	$(GO) run ./cmd/batchzk-profile -scenario $(SCENARIO) -out $(REPORT_DIR)

# Regenerate BENCH_scheduler.json: the batch prover measured under the
# 1/1/1/1 baseline, the §4 proportional split, and the elastic
# autobalanced split, plus the host-independent simulated contrast.
bench-sched:
	$(GO) run ./cmd/batchzk-bench sched -out $(REPORT_DIR)

# Regenerate BENCH_kernels.json: every hot kernel (Merkle, encoder,
# sum-check, NTT, PCS commit, batch inversion) timed serial vs parallel
# on the multicore runtime, with bit-identity asserted.
bench-kernels:
	$(GO) run ./cmd/batchzk-bench kernels -out $(REPORT_DIR)

# Regenerate BENCH_memory.json: a multi-wave soak through one batch
# prover under the background memory sampler, gating the flat-memory
# claim and recording per-job flight timelines, plus the streaming-prover
# sweep (8× batch under ProveStream + out-of-core commits, working set
# gated flat).
bench-mem:
	$(GO) run ./cmd/batchzk-bench mem -stream -out $(REPORT_DIR)

# Regenerate BENCH_service.json: the multi-tenant proving gateway under
# open-loop Poisson load with bursts, gating exactly-once accounting,
# the drain contract, batching occupancy, and per-tenant fairness.
bench-service:
	$(GO) run ./cmd/batchzk-bench service -out $(REPORT_DIR)

# Gate the working tree against the committed reports: regenerate into a
# temp dir and fail on any gated metric >10% worse. The scenario report,
# the scheduler report, the kernels report, the memory report, and the
# service report are all gated.
bench-check:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/batchzk-profile -scenario $(SCENARIO) -out $$tmp >/dev/null && \
	$(GO) run ./cmd/batchzk-profile compare $(REPORT_DIR)/BENCH_$(SCENARIO).json $$tmp/BENCH_$(SCENARIO).json && \
	$(GO) run ./cmd/batchzk-bench sched -out $$tmp >/dev/null && \
	$(GO) run ./cmd/batchzk-profile compare $(REPORT_DIR)/BENCH_scheduler.json $$tmp/BENCH_scheduler.json && \
	$(GO) run ./cmd/batchzk-bench kernels -shift 12 -reps 1 -out $$tmp >/dev/null && \
	$(GO) run ./cmd/batchzk-profile compare $(REPORT_DIR)/BENCH_kernels.json $$tmp/BENCH_kernels.json && \
	$(GO) run ./cmd/batchzk-bench mem -stream -waves 4 -jobs 16 -out $$tmp >/dev/null && \
	$(GO) run ./cmd/batchzk-profile compare $(REPORT_DIR)/BENCH_memory.json $$tmp/BENCH_memory.json && \
	$(GO) run ./cmd/batchzk-bench service -jobs 8 -out $$tmp >/dev/null && \
	$(GO) run ./cmd/batchzk-profile compare $(REPORT_DIR)/BENCH_service.json $$tmp/BENCH_service.json; \
	status=$$?; rm -rf $$tmp; exit $$status

# Print the host-kernel roofline: serial ns/element for every hot kernel
# against the calibrated arithmetic floor, with per-kernel verdicts.
roofline:
	$(GO) run ./cmd/batchzk-profile roofline

# Short coverage-guided fuzz of the codec/derivation/verification
# surfaces (go test allows one -fuzz pattern per invocation, so one run
# per package). Seed corpora live in each package's testdata/fuzz.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzElementDecoding -fuzztime $(FUZZTIME) ./internal/field/
	$(GO) test -run '^$$' -fuzz FuzzFieldArith -fuzztime $(FUZZTIME) ./internal/field/
	$(GO) test -run '^$$' -fuzz FuzzFpArith -fuzztime $(FUZZTIME) ./internal/fp/
	$(GO) test -run '^$$' -fuzz FuzzChallengeDerivation -fuzztime $(FUZZTIME) ./internal/transcript/
	$(GO) test -run '^$$' -fuzz FuzzOpeningProofVerify -fuzztime $(FUZZTIME) ./internal/merkle/

# Aggregate gate: everything CI runs.
check: build vet test race
	$(GO) run ./cmd/batchzk-profile -scenario tiny -out $$(mktemp -d) >/dev/null
	@echo "check: ok"
