package batchzk

import (
	"net/http"

	"batchzk/internal/obs"
	"batchzk/internal/telemetry"
)

// Operations layer (internal/obs): the always-on health surface over the
// telemetry substrate. An ObsEngine runs the structured JSON event log,
// the SLO engine (windowed objectives, multi-window burn rates, error
// budgets), and the anomaly sentinel (roofline-floor and EWMA-baseline
// regression alerts, shard-vs-fleet failure divergence, quarantine-storm
// readiness gating). Enable one process-wide and the instrumented layers
// — batch prover, scheduler, GPU simulator, vml service — feed it;
// /healthz, /readyz, and /debug/obs/slo appear on the telemetry debug
// server, and `batchzk-top` renders the live snapshot.

// ObsConfig assembles an ObsEngine; the zero value uses the default
// objectives (e2e p99 ≤ 250ms, error rate ≤ 2%), windows, and thresholds.
type ObsConfig = obs.Config

// ObsEngine is the live health evaluator: SLO tracking, anomaly alerts,
// readiness. All methods are nil-safe.
type ObsEngine = obs.Engine

// ObsObjective is one configurable service-level objective (a latency
// quantile bound or an error-rate bound).
type ObsObjective = obs.Objective

// ObsObjectiveStatus is one objective's point-in-time evaluation:
// windowed value, attainment, fast/slow burn rates, budget remaining.
type ObsObjectiveStatus = obs.ObjectiveStatus

// ObsSnapshot is the operator view served on /debug/obs/slo.
type ObsSnapshot = obs.Snapshot

// ObsAlert is one structured sentinel finding (kernel/stage regression,
// shard failure divergence, SLO burn, quarantine storm).
type ObsAlert = obs.Alert

// ObsSentinelConfig tunes the anomaly sentinel inside an ObsConfig
// (EWMA smoothing, regression factors, hysteresis depths).
type ObsSentinelConfig = obs.SentinelConfig

// Objective kinds and alert severities, re-exported for configuration.
const (
	ObsKindLatency      = obs.KindLatency
	ObsKindErrorRate    = obs.KindErrorRate
	ObsSeverityWarning  = obs.SeverityWarning
	ObsSeverityCritical = obs.SeverityCritical
)

// NewObsEngine builds an engine from cfg (zero ObsConfig = defaults).
func NewObsEngine(cfg ObsConfig) *ObsEngine { return obs.New(cfg) }

// EnableObs installs e as the process-wide engine every instrumented
// layer records into; EnableObs(nil) turns the operations layer off.
func EnableObs(e *ObsEngine) { obs.Enable(e) }

// ActiveObs returns the process-wide engine, or nil when obs is off.
func ActiveObs() *ObsEngine { return obs.Active() }

// DefaultObsObjectives returns the stock service objectives.
func DefaultObsObjectives() []ObsObjective { return obs.DefaultObjectives() }

// ObsHandler returns a standalone mux serving /healthz, /readyz, and
// /debug/obs/slo, for embedding into servers that do not mount the
// telemetry debug handler.
func ObsHandler() http.Handler { return obs.Handler() }

// TelemetryRuntime owns the long-running telemetry components (mem
// samplers, debug servers) started through it and stops all of them with
// one idempotent, concurrency-safe Close.
type TelemetryRuntime = telemetry.Runtime
