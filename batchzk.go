// Package batchzk is a Go reproduction of "BatchZK: A Fully Pipelined
// GPU-Accelerated System for Batch Generation of Zero-Knowledge Proofs"
// (ASPLOS 2025).
//
// The library provides:
//
//   - an arithmetic-circuit front end (NewCircuitBuilder / RandomCircuit)
//     for the functions y = F(x, w) being proven;
//   - a complete non-interactive proof system built from the paper's three
//     cost-effective modules — linear-time encoder, Merkle tree, and
//     sum-check protocol — with Setup / Prove / Verify;
//   - the paper's primary contribution: a fully pipelined batch prover
//     (NewBatchProver) that streams proof jobs through stage-dedicated
//     workers with bounded in-flight memory, emitting proofs
//     bit-identical to the sequential prover;
//   - the verifiable machine-learning application of §5
//     (NewMLaaSService): commit to a model, answer predictions, attach
//     proofs that customers verify against the commitment;
//   - a deterministic GPU-execution simulator and the experiment harness
//     that regenerates every table and figure of the paper's evaluation
//     (RunExperiment), since real CUDA hardware is outside a pure-Go
//     reproduction (see DESIGN.md for the substitution argument).
//
// Start with examples/quickstart, then examples/zkbridge (batch
// throughput) and examples/vml (verifiable ML).
package batchzk

import (
	"io"
	"net/http"

	"batchzk/internal/bench"
	"batchzk/internal/circuit"
	"batchzk/internal/core"
	"batchzk/internal/faults"
	"batchzk/internal/field"
	"batchzk/internal/gpusim"
	"batchzk/internal/nn"
	"batchzk/internal/par"
	"batchzk/internal/perfmodel"
	"batchzk/internal/protocol"
	"batchzk/internal/sched"
	"batchzk/internal/vml"
)

// Element is a field element of the 254-bit proving field (BN254 scalar).
type Element = field.Element

// NewElement returns v as a field element.
func NewElement(v uint64) Element { return field.NewElement(v) }

// RandVector returns n uniformly random field elements.
func RandVector(n int) []Element { return field.RandVector(n) }

// Circuit is a compiled arithmetic circuit.
type Circuit = circuit.Circuit

// CircuitBuilder assembles circuits from inputs, gates and constants.
type CircuitBuilder = circuit.Builder

// Wire identifies a circuit value.
type Wire = circuit.Wire

// NewCircuitBuilder returns an empty circuit builder.
func NewCircuitBuilder() *CircuitBuilder { return circuit.NewBuilder() }

// RandomCircuit synthesizes a benchmark circuit with the given
// multiplication-gate count (the paper's scale S).
func RandomCircuit(mulGates, numPublic, numSecret int, seed int64) (*Circuit, error) {
	return circuit.RandomCircuit(mulGates, numPublic, numSecret, seed)
}

// Params are the proof-system parameters derived from a circuit.
type Params = protocol.Params

// Proof is a complete non-interactive argument for one circuit execution.
type Proof = protocol.Proof

// Setup derives proof-system parameters for a circuit.
func Setup(c *Circuit) (*Params, error) { return protocol.Setup(c) }

// Prove evaluates the circuit on (public, secret) and proves the result.
func Prove(c *Circuit, p *Params, public, secret []Element) (*Proof, error) {
	return protocol.Prove(c, p, public, secret)
}

// Verify checks a proof against the circuit and public inputs. The
// circuit outputs it attests to are carried in proof.Outputs.
func Verify(c *Circuit, p *Params, public []Element, proof *Proof) error {
	return protocol.Verify(c, p, public, proof)
}

// Job is one proof request for the batch prover.
type Job = core.Job

// Result pairs a job with its proof (or error), in submission order.
type Result = core.Result

// BatchProver is the fully pipelined batch proof generator (§4 of the
// paper): jobs stream through stage-dedicated workers, each stage busy on
// a different proof, with a bounded number of proofs in flight.
type BatchProver = core.BatchProver

// NewBatchProver builds a batch prover for a circuit with the given
// pipeline depth (in-flight proof bound).
func NewBatchProver(c *Circuit, p *Params, depth int) (*BatchProver, error) {
	return core.NewBatchProver(c, p, depth)
}

// ProverStats is a point-in-time snapshot of a batch prover's counters,
// including its resilience accounting (retries, quarantines, timeouts).
type ProverStats = core.Stats

// ProverSchedule configures the batch prover's per-stage worker pools —
// the host-side analogue of the paper's §4 thread allocation. Install it
// with BatchProver.SetSchedule; derive one from measured stage times
// with ProportionalProverSchedule or BatchProver.CalibrateSchedule.
type ProverSchedule = core.Schedule

// ProportionalProverSchedule splits a worker budget across the four
// prover stages in proportion to their measured busy times (§4's
// amortized-time-ratio rule), at least one worker per stage.
func ProportionalProverSchedule(stats ProverStats, budget int) ProverSchedule {
	return core.ProportionalSchedule(stats, budget)
}

// ParseWorkerSpec parses a -workers flag value: a comma-separated
// per-stage list ("2,4,1,1") or a single total budget ("8") to be split
// by the amortized-time-ratio rule. Empty means the 1/1/1/1 default.
func ParseWorkerSpec(spec string) (workers []int, budget int, err error) {
	return sched.ParseWorkers(spec, len(core.StageNames))
}

// ShardedProver splits one batch across S independent prover shards,
// scattering jobs round-robin and merging results deterministically in
// global submission order.
type ShardedProver = core.ShardedProver

// NewShardedProver builds shards independent batch provers over one
// circuit, each with its own in-flight budget of depth proofs.
func NewShardedProver(c *Circuit, p *Params, shards, depth int) (*ShardedProver, error) {
	return core.NewShardedProver(c, p, shards, depth)
}

// Memory-bounded streaming mode. Both prover flavors expose two
// orthogonal switches that together bound peak host heap by the
// in-flight window instead of the batch size (the host-side analogue of
// the paper's ~2N-block device budget):
//
//   - SetStreamingCommit(true) replaces the buffered polynomial
//     commitment (which materializes the RateInv× encoded matrix) with
//     the out-of-core pcs.StreamingCommitter — per-column incremental
//     hashers during commitment, on-demand row re-encoding at the
//     opening — with bit-identical proofs.
//   - ProveStream(next, emit) replaces slice-in/slice-out batching:
//     jobs are pulled from next only as pipeline slots free up, and
//     each proof is handed to emit the moment it finalizes.
//
// See DESIGN.md §9 for the memory model.

// FaultClass names one injectable fault class: "mem", "kernel",
// "transfer", "panic", or "straggler".
type FaultClass = faults.Class

// FaultInjector is the seeded, deterministic fault injector: whether a
// fault fires at a (stage, job, attempt) site is a pure function of the
// seed, so chaos runs replay bit-identically.
type FaultInjector = faults.Injector

// NewFaultInjector returns an injector with no fault classes enabled.
func NewFaultInjector(seed uint64) *FaultInjector { return faults.NewInjector(seed) }

// ParseFaultSpec builds an injector from a chaos spec such as "all",
// "all=0.25", or "kernel=0.2,straggler=0.05".
func ParseFaultSpec(spec string, seed uint64) (*FaultInjector, error) {
	return faults.ParseSpec(spec, seed)
}

// Resilience configures the batch prover's failure handling: per-job
// deadlines, bounded retries with backoff, and fault injection. Install
// it with BatchProver.SetResilience.
type Resilience = core.Resilience

// RetryPolicy bounds how transient stage failures are retried.
type RetryPolicy = core.RetryPolicy

// QuarantinedJob is one dead-letter record of a job the pipeline gave
// up on; BatchProver.Quarantined lists them.
type QuarantinedJob = core.QuarantinedJob

// DefaultResilience returns the recommended service configuration:
// 4 attempts per stage with 1 ms base backoff, no deadline.
func DefaultResilience() *Resilience { return core.DefaultResilience() }

// Network is a fixed-point neural network (the §5 ML engine).
type Network = nn.Network

// Tensor is a fixed-point activation/image tensor.
type Tensor = nn.Tensor

// VGG16 builds the paper's VGG-16 architecture (32×32×3 inputs, 10
// classes) with deterministic synthetic weights.
func VGG16(seed int64) *Network { return nn.VGG16(seed) }

// TinyCNN builds a small CNN whose inference is proven end to end.
func TinyCNN(seed int64) *Network { return nn.TinyCNN(seed) }

// RandImage generates a deterministic synthetic input image.
func RandImage(c, h, w int, seed int64) *Tensor { return nn.RandImage(c, h, w, seed) }

// MLaaSService is the verifiable machine-learning service of §5: it
// commits to a model, answers predictions, and attaches proofs.
type MLaaSService = vml.Service

// MLaaSClient verifies predictions against the model commitment.
type MLaaSClient = vml.Client

// Prediction is a proven prediction.
type Prediction = vml.Prediction

// NewMLaaSService commits to the network and prepares the batch prover.
// The service's Handler method serves the HTTP interface of the paper's
// Figure 8 (GET /commitment, POST /predict).
func NewMLaaSService(net *Network, depth int) (*MLaaSService, error) {
	return vml.NewService(net, depth)
}

// MLaaSRemoteClient queries an MLaaS server over HTTP and verifies every
// prediction locally against the model commitment.
type MLaaSRemoteClient = vml.RemoteClient

// NewMLaaSRemoteClient connects to an MLaaS server, cross-checking its
// published commitment against the trusted verifier material.
func NewMLaaSRemoteClient(baseURL string, verifier *MLaaSClient, hc *http.Client) (*MLaaSRemoteClient, error) {
	return vml.NewRemoteClient(baseURL, verifier, hc)
}

// DeviceSpec describes a simulated GPU (or CPU) profile.
type DeviceSpec = gpusim.DeviceSpec

// Device returns a hardware profile by name: "GH200", "H100", "A100",
// "V100", "3090Ti", "c5a.8xlarge", or "Grace".
func Device(name string) (DeviceSpec, error) { return perfmodel.DeviceByName(name) }

// SystemReport is a simulated batch-proving performance report.
type SystemReport = core.SystemReport

// SimulateSystem models batch proof generation at circuit scale S on a
// device profile, returning throughput, latency, memory, and the
// per-module breakdown.
func SimulateSystem(spec DeviceSpec, scale, batch int) (*SystemReport, error) {
	return core.SimulateSystem(spec, perfmodel.GPUCosts(), scale, batch, true)
}

// ShardedSystemReport summarizes a sharded simulation: one batch split
// across S simulated devices with per-device memory budgets.
type ShardedSystemReport = core.ShardedSystemReport

// SimulateSystemSharded models batch proof generation at circuit scale S
// with the batch split across shards simulated devices; a positive
// deviceMemBytes overrides each device's memory budget.
func SimulateSystemSharded(spec DeviceSpec, scale, batch, shards int, deviceMemBytes int64) (*ShardedSystemReport, error) {
	return core.SimulateSystemSharded(spec, perfmodel.GPUCosts(), scale, batch, shards, true, deviceMemBytes)
}

// ExperimentTable is one regenerated table/figure of the paper.
type ExperimentTable = bench.Table

// Experiments lists the reproducible experiment ids (table3 … fig9).
func Experiments() []string { return bench.Experiments() }

// RunExperiment regenerates one table or figure of the paper's evaluation
// on the given device profile.
func RunExperiment(id string, spec DeviceSpec) (*ExperimentTable, error) {
	return bench.Run(id, spec)
}

// RunAllExperiments regenerates every table and figure, writing the
// rendered results to w.
func RunAllExperiments(spec DeviceSpec, w io.Writer) error {
	tables, err := bench.All(spec)
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Render(w)
	}
	return nil
}

// SimReport is the raw result of one simulated run (either scheme).
type SimReport = gpusim.Report

// RunProfile is the profiler's attribution of one simulated run: where
// lane-time went (compute, memory stalls, launch overhead, starvation,
// idle), per-stage verdicts, and the run-level bottleneck diagnosis.
type RunProfile = gpusim.Profile

// RunContrast pairs a pipelined and a naive profile of the same workload
// — the paper's Figure 9 comparison as a data structure.
type RunContrast = gpusim.Contrast

// ProfileRun post-processes a simulated run into a RunProfile.
func ProfileRun(rep *SimReport) (*RunProfile, error) { return gpusim.BuildProfile(rep) }

// ContrastRuns builds the pipelined-vs-naive contrast from two profiles.
func ContrastRuns(pipelined, naive *RunProfile) (*RunContrast, error) {
	return gpusim.NewContrast(pipelined, naive)
}

// BenchScenario is a named, reproducible bench-report workload.
type BenchScenario = bench.Scenario

// BenchReport is the schema-versioned content of a BENCH_<scenario>.json
// file: throughput, latency percentiles, utilization breakdown and peak
// device memory for both schemes.
type BenchReport = bench.Report

// BenchRegression is one gated metric that moved the wrong way between
// two bench reports.
type BenchRegression = bench.Regression

// BenchScenarios lists the report scenarios in presentation order.
func BenchScenarios() []BenchScenario { return bench.Scenarios() }

// BenchScenarioByName resolves a scenario from the registry.
func BenchScenarioByName(name string) (BenchScenario, error) { return bench.ScenarioByName(name) }

// BuildBenchReport runs a scenario on a device under both schemes and
// returns the report plus the profiler contrast backing it.
func BuildBenchReport(sc BenchScenario, spec DeviceSpec) (*BenchReport, *RunContrast, error) {
	return bench.BuildReport(sc, spec, perfmodel.GPUCosts())
}

// ReadBenchReport parses and schema-checks a BENCH_*.json stream.
func ReadBenchReport(r io.Reader) (*BenchReport, error) { return bench.ReadReport(r) }

// CompareBenchReports diffs two reports of the same scenario, returning
// the metrics that regressed past threshold (a fraction, e.g. 0.10).
func CompareBenchReports(old, cur *BenchReport, threshold float64) ([]BenchRegression, error) {
	return bench.Compare(old, cur, threshold)
}

// BenchReportFileName is the BENCH_<scenario>.json naming convention.
func BenchReportFileName(scenario string) string { return bench.ReportFileName(scenario) }

// SchedulerBenchReport is the schema-versioned content of
// BENCH_scheduler.json: measured batch-prover throughput under the
// baseline, proportional and autobalanced worker allocations, plus the
// deterministic simulated allocation contrast.
type SchedulerBenchReport = bench.SchedulerReport

// BuildSchedulerBenchReport measures the prover's throughput under the
// three worker allocations and verifies the ordering and bit-identity
// invariants against the sequential reference prover.
func BuildSchedulerBenchReport(gates, batch, depth, budget int, seed int64) (*SchedulerBenchReport, error) {
	return bench.BuildSchedulerReport(gates, batch, depth, budget, seed)
}

// ReadSchedulerBenchReport parses and schema-checks a
// BENCH_scheduler.json stream.
func ReadSchedulerBenchReport(r io.Reader) (*SchedulerBenchReport, error) {
	return bench.ReadSchedulerReport(r)
}

// CompareSchedulerBenchReports gates a new scheduler report against an
// old one (correctness invariants and the simulated gain always;
// measured throughput only between equal-core hosts).
func CompareSchedulerBenchReports(old, cur *SchedulerBenchReport, threshold float64) ([]BenchRegression, error) {
	return bench.CompareScheduler(old, cur, threshold)
}

// SchedulerBenchFileName is the BENCH_scheduler.json naming convention.
func SchedulerBenchFileName() string { return bench.SchedulerReportFileName() }

// SchedulerBenchKind is the "kind" discriminator scheduler reports carry
// so tooling can route a BENCH_*.json to the right comparator.
func SchedulerBenchKind() string { return bench.SchedulerReportKind }

// SetKernelWorkers sets the width of the shared multicore kernel runtime
// that every hot kernel (Merkle, encoder, sum-check, NTT, PCS, MSM) runs
// on: w-way parallelism, 1 = fully serial, ≤ 0 = the GOMAXPROCS default.
// Parallel kernels are bit-identical to their serial forms at any width.
func SetKernelWorkers(w int) { par.SetWidth(w) }

// KernelWorkers reports the kernel runtime's current width.
func KernelWorkers() int { return par.Width() }

// KernelsBenchReport is the schema-versioned content of
// BENCH_kernels.json: serial-vs-parallel timings of every hot kernel on
// the multicore runtime, each with a bit-identity check.
type KernelsBenchReport = bench.KernelsReport

// BuildKernelsBenchReport measures every kernel at 2^shift problem sizes,
// serial (width 1) vs parallel (workers; ≤ 0 = GOMAXPROCS), best of reps
// runs, asserting bit-identical outputs.
func BuildKernelsBenchReport(shift, reps, workers int, seed int64) (*KernelsBenchReport, error) {
	return bench.BuildKernelsReport(shift, reps, workers, seed)
}

// ReadKernelsBenchReport parses and schema-checks a BENCH_kernels.json
// stream.
func ReadKernelsBenchReport(r io.Reader) (*KernelsBenchReport, error) {
	return bench.ReadKernelsReport(r)
}

// CompareKernelsBenchReports gates a new kernels report against an old
// one (bit-identity always; speedups only between equal-core hosts).
func CompareKernelsBenchReports(old, cur *KernelsBenchReport, threshold float64) ([]BenchRegression, error) {
	return bench.CompareKernels(old, cur, threshold)
}

// KernelsBenchFileName is the BENCH_kernels.json naming convention.
func KernelsBenchFileName() string { return bench.KernelsReportFileName() }

// KernelsBenchKind is the "kind" discriminator kernels reports carry.
func KernelsBenchKind() string { return bench.KernelsReportKind }

// MemoryBenchReport is the schema-versioned content of
// BENCH_memory.json: a multi-wave soak through one batch prover with
// per-wave heap high-water marks, the flat-memory verdict, and the
// per-job SLO summary from the flight recorder.
type MemoryBenchReport = bench.MemoryReport

// BuildMemoryBenchReport runs the memory soak — waves identical batches
// of batch jobs through one depth-bounded prover under a background
// memory sampler — and returns the report plus the telemetry sink the
// run recorded into, so callers can also export the per-job timeline
// and Chrome trace of the same run.
func BuildMemoryBenchReport(gates, batch, waves, depth int, seed int64) (*MemoryBenchReport, *TelemetrySink, error) {
	return bench.BuildMemorySoak(gates, batch, waves, depth, seed)
}

// MemoryStreamSweep is the streaming-prover block of BENCH_memory.json:
// working-set high-water marks at two batch sizes 8× apart under the
// streaming prover, and the flat-growth verdict.
type MemoryStreamSweep = bench.StreamSweep

// BuildMemoryStreamSweep proves batch and 8×batch jobs through fresh
// streaming provers (out-of-core commits, lazy job pull, immediate
// proof emission) and gates the working-set growth between the points.
// Attach the result to a MemoryBenchReport's Stream field to make the
// claim part of the gated BENCH_memory.json.
func BuildMemoryStreamSweep(gates, batch, depth int, seed int64) (*MemoryStreamSweep, error) {
	return bench.BuildMemoryStreamSweep(gates, batch, depth, seed)
}

// ReadMemoryBenchReport parses and schema-checks a BENCH_memory.json
// stream.
func ReadMemoryBenchReport(r io.Reader) (*MemoryBenchReport, error) {
	return bench.ReadMemoryReport(r)
}

// CompareMemoryBenchReports gates a new memory report against an old one
// (flatness and proof success always; absolute heap peaks only between
// equal-core hosts, with extra slack for GC timing noise).
func CompareMemoryBenchReports(old, cur *MemoryBenchReport, threshold float64) ([]BenchRegression, error) {
	return bench.CompareMemory(old, cur, threshold)
}

// MemoryBenchFileName is the BENCH_memory.json naming convention.
func MemoryBenchFileName() string { return bench.MemoryReportFileName() }

// MemoryBenchKind is the "kind" discriminator memory reports carry.
func MemoryBenchKind() string { return bench.MemoryReportKind }

// ServiceBenchReport is the schema-versioned content of
// BENCH_service.json: the multi-tenant proving gateway measured under
// open-loop Poisson load with heavy-tailed bursts — e2e latency
// percentiles, batch occupancy, per-tenant fairness, and the
// exactly-once traffic accounting.
type ServiceBenchReport = bench.ServiceReport

// ServiceBenchConfig parameterizes BuildServiceBenchReport.
type ServiceBenchConfig = bench.ServiceBenchConfig

// BuildServiceBenchReport stands up an HTTP gateway over a sharded
// prover, replays the configured load (optionally under injected
// faults), probes the drain contract, and returns the report.
func BuildServiceBenchReport(cfg ServiceBenchConfig) (*ServiceBenchReport, error) {
	return bench.BuildServiceBench(cfg)
}

// ReadServiceBenchReport parses and schema-checks a BENCH_service.json
// stream.
func ReadServiceBenchReport(r io.Reader) (*ServiceBenchReport, error) {
	return bench.ReadServiceReport(r)
}

// CompareServiceBenchReports gates a new service report against an old
// one (exactly-once accounting, drain contract, proof verification, and
// the fairness floor always; latency and occupancy only between
// equal-core hosts, with queueing-noise slack).
func CompareServiceBenchReports(old, cur *ServiceBenchReport, threshold float64) ([]BenchRegression, error) {
	return bench.CompareService(old, cur, threshold)
}

// ServiceBenchFileName is the BENCH_service.json naming convention.
func ServiceBenchFileName() string { return bench.ServiceReportFileName() }

// ServiceBenchKind is the "kind" discriminator service reports carry.
func ServiceBenchKind() string { return bench.ServiceReportKind }

// RooflineReport is the host-kernel roofline: measured serial ns/element
// for every hot kernel against a calibrated arithmetic floor (measured
// Montgomery-multiply / add / hash-compress latencies times each
// kernel's per-element op model), with a percent-of-ceiling verdict per
// kernel mirroring the GPU simulator's bound verdicts.
type RooflineReport = bench.RooflineReport

// BuildRooflineReport calibrates the host ALU, times every kernel at
// 2^shift elements serially (best of reps), and scores each against its
// arithmetic floor.
func BuildRooflineReport(shift, reps int, seed int64) (*RooflineReport, error) {
	return bench.BuildRooflineReport(shift, reps, seed)
}

// ReadRooflineReport parses and schema-checks a roofline report stream.
func ReadRooflineReport(r io.Reader) (*RooflineReport, error) {
	return bench.ReadRooflineReport(r)
}

// RooflineBenchKind is the "kind" discriminator roofline reports carry.
func RooflineBenchKind() string { return bench.RooflineReportKind }
