package batchzk

import (
	"context"
	"net/http"
	"time"

	"batchzk/internal/telemetry"
)

// TelemetrySink bundles the metrics registry and span tracer that the
// instrumented layers (batch prover, pipelined modules, GPU simulator)
// record into. Dump(dir) writes metrics.json, trace.json (Chrome
// trace_event format — load in chrome://tracing or ui.perfetto.dev) and
// spans.jsonl.
type TelemetrySink = telemetry.Sink

// NewTelemetrySink builds a sink with the default span-ring capacity.
func NewTelemetrySink() *TelemetrySink { return telemetry.NewSink(0) }

// EnableTelemetry installs s as the process-wide sink: every prover run,
// pipelined module schedule, and simulated device run records into it
// until EnableTelemetry(nil) turns telemetry off again.
func EnableTelemetry(s *TelemetrySink) { telemetry.Enable(s) }

// ActiveTelemetry returns the process-wide sink, or nil when disabled.
func ActiveTelemetry() *TelemetrySink { return telemetry.Active() }

// ServeTelemetryDebug starts an HTTP debug server on addr exposing
// /debug/vars (expvar), /debug/pprof/..., /debug/telemetry (metrics
// snapshot), /debug/telemetry/trace and /debug/telemetry/spans. A nil
// sink follows the process-wide one. The server runs until the returned
// *http.Server is closed.
func ServeTelemetryDebug(addr string, s *TelemetrySink) (*http.Server, error) {
	return telemetry.ServeDebug(addr, s)
}

// TraceID identifies one proof job end to end on the flight recorder's
// timeline: minted at batch submit, carried through every pipeline
// stage, retries and quarantine, and returned on the job's Result. The
// zero TraceID means "untraced".
type TraceID = telemetry.TraceID

// WithTraceID returns a context carrying id, for propagating a caller's
// job identity across API boundaries (the vml HTTP server reads it from
// the X-Trace-Id header into the request context).
func WithTraceID(ctx context.Context, id TraceID) context.Context {
	return telemetry.WithTraceID(ctx, id)
}

// TraceIDFrom extracts the trace id from ctx, or 0.
func TraceIDFrom(ctx context.Context) TraceID { return telemetry.TraceIDFrom(ctx) }

// JobTimeline is one job's recorded flight: submit, queue wait, per-stage
// spans with attempt counts, retries, quarantine, and emit.
type JobTimeline = telemetry.JobTimeline

// SLOSummary aggregates the flight recorder's completed timelines into
// per-job service-level numbers: e2e latency percentiles, queue-wait
// p99, and per-stage cost attribution shares.
type SLOSummary = telemetry.SLOSummary

// FlightRecorder is the sink's per-job timeline store. Obtain one from
// a TelemetrySink via FlightRecorder(); all methods are nil-safe.
type FlightRecorder = telemetry.FlightRecorder

// MemSampler is a background runtime.ReadMemStats sampler with named
// phases and per-phase heap high-water marks, feeding mem/* gauges on
// the sink's registry (peaks surface on /metrics and expvar).
type MemSampler = telemetry.MemSampler

// StartMemSampler starts a memory sampler ticking every interval
// (0 = the 10ms default) into sink (nil = the process-wide sink).
func StartMemSampler(sink *TelemetrySink, interval time.Duration) *MemSampler {
	return telemetry.StartMemSampler(sink, interval)
}
