package batchzk

import (
	"net/http"

	"batchzk/internal/telemetry"
)

// TelemetrySink bundles the metrics registry and span tracer that the
// instrumented layers (batch prover, pipelined modules, GPU simulator)
// record into. Dump(dir) writes metrics.json, trace.json (Chrome
// trace_event format — load in chrome://tracing or ui.perfetto.dev) and
// spans.jsonl.
type TelemetrySink = telemetry.Sink

// NewTelemetrySink builds a sink with the default span-ring capacity.
func NewTelemetrySink() *TelemetrySink { return telemetry.NewSink(0) }

// EnableTelemetry installs s as the process-wide sink: every prover run,
// pipelined module schedule, and simulated device run records into it
// until EnableTelemetry(nil) turns telemetry off again.
func EnableTelemetry(s *TelemetrySink) { telemetry.Enable(s) }

// ActiveTelemetry returns the process-wide sink, or nil when disabled.
func ActiveTelemetry() *TelemetrySink { return telemetry.Active() }

// ServeTelemetryDebug starts an HTTP debug server on addr exposing
// /debug/vars (expvar), /debug/pprof/..., /debug/telemetry (metrics
// snapshot), /debug/telemetry/trace and /debug/telemetry/spans. A nil
// sink follows the process-wide one. The server runs until the returned
// *http.Server is closed.
func ServeTelemetryDebug(addr string, s *TelemetrySink) (*http.Server, error) {
	return telemetry.ServeDebug(addr, s)
}
