module batchzk

go 1.22
