// mlaas: the full MLaaS deployment of the paper's Figure 8 over a real
// HTTP interface — the service provider runs an inference+proving server;
// the customer queries it over the network and verifies every prediction
// locally against the model commitment.
//
//	go run ./examples/mlaas
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"batchzk"
)

func main() {
	// --- Provider: commit to the model and expose the interface. --------
	svc, err := batchzk.NewMLaaSService(batchzk.TinyCNN(7777), 3)
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	root := svc.ModelRoot()
	fmt.Printf("provider: serving committed model %x… at %s\n", root[:8], srv.URL)

	// --- Customer: connect, check the commitment, query with proofs. ----
	client, err := batchzk.NewMLaaSRemoteClient(srv.URL, svc.Client(), srv.Client())
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		img := batchzk.RandImage(1, 8, 8, int64(300+i))
		pred, err := client.Predict(img)
		if err != nil {
			log.Fatal(err)
		}
		size, _ := pred.Proof.Size()
		fmt.Printf("customer: query %d → class %d (proof %d KiB, verified against the commitment)\n",
			i, pred.Class, size/1024)
	}
	fmt.Println("every prediction carried a proof the customer checked locally — no trust in the server required")
}
