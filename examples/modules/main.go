// modules: the three computational modules of BatchZK used standalone —
// Merkle tree, sum-check protocol, and linear-time encoder — each in its
// one-at-a-time form and its pipelined batch form (§3 of the paper), with
// the batch results checked against the sequential ones.
//
//	go run ./examples/modules
package main

import (
	"fmt"
	"log"
	"math/rand"

	"batchzk"
)

func main() {
	merkleDemo()
	sumcheckDemo()
	encoderDemo()
}

func merkleDemo() {
	// Commit to 64 data blocks, prove membership of block 13.
	r := rand.New(rand.NewSource(1))
	blocks := make([]batchzk.MerkleBlock, 64)
	for i := range blocks {
		r.Read(blocks[i][:])
	}
	tree, err := batchzk.BuildMerkleTree(blocks)
	if err != nil {
		log.Fatal(err)
	}
	proof, err := tree.Prove(13)
	if err != nil {
		log.Fatal(err)
	}
	if !batchzk.VerifyMerklePath(tree.Root(), proof) {
		log.Fatal("merkle path did not verify")
	}
	fmt.Printf("merkle: committed 64 blocks, proved block 13 with a %d-hash path\n", len(proof.Siblings))

	// Batch: 16 trees streamed through the layer-per-stage pipeline.
	tasks := make([][]batchzk.MerkleBlock, 16)
	for t := range tasks {
		tasks[t] = make([]batchzk.MerkleBlock, 64)
		for i := range tasks[t] {
			r.Read(tasks[t][i][:])
		}
	}
	roots, err := batchzk.BatchMerkleRoots(tasks)
	if err != nil {
		log.Fatal(err)
	}
	for t := range tasks {
		tree, _ := batchzk.BuildMerkleTree(tasks[t])
		if roots[t] != tree.Root() {
			log.Fatal("pipelined root differs from sequential build")
		}
	}
	fmt.Printf("merkle: %d trees batch-generated in pipeline order, roots identical to sequential builds\n", len(roots))
}

func sumcheckDemo() {
	// Prove that a 2^10-entry table sums to its claim, non-interactively.
	evals := batchzk.RandVector(1 << 10)
	proof, claim, err := batchzk.ProveSum("modules-demo", evals)
	if err != nil {
		log.Fatal(err)
	}
	if err := batchzk.VerifySum("modules-demo", claim, proof, evals); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sumcheck: proved a 2^10 hypercube sum in %d rounds; verifier accepted\n", proof.NumRounds())

	// A wrong claim is rejected.
	bad := claim
	one := batchzk.NewElement(1)
	bad.Add(&bad, &one)
	if err := batchzk.VerifySum("modules-demo", bad, proof, evals); err == nil {
		log.Fatal("wrong claim accepted")
	}
	fmt.Println("sumcheck: off-by-one claim rejected")

	// Batch: 8 proofs streamed through the round-per-stage pipeline with
	// the Figure-5 double buffers; here with fixed per-task randomness.
	tables := make([][]batchzk.Element, 8)
	challenges := make([][]batchzk.Element, 8)
	for i := range tables {
		tables[i] = batchzk.RandVector(1 << 8)
		challenges[i] = batchzk.RandVector(8)
	}
	results, err := batchzk.BatchProveSums(tables, func(task, round int, _, _ batchzk.Element) batchzk.Element {
		return challenges[task][round]
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sumcheck: %d proofs batch-generated (%d rounds each)\n", len(results), results[0].Proof.NumRounds())
}

func encoderDemo() {
	enc, err := batchzk.NewEncoder(256)
	if err != nil {
		log.Fatal(err)
	}
	msg := batchzk.RandVector(256)
	cw, err := enc.Encode(msg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoder: 256 elements → %d-element codeword (rate 1/%d, systematic)\n",
		len(cw), len(cw)/len(msg))

	// Batch: 12 messages through the two-pipeline schedule of Figure 6.
	msgs := make([][]batchzk.Element, 12)
	for i := range msgs {
		msgs[i] = batchzk.RandVector(256)
	}
	codes, err := batchzk.BatchEncodeMessages(enc, msgs)
	if err != nil {
		log.Fatal(err)
	}
	for i := range msgs {
		want, _ := enc.Encode(msgs[i])
		for j := range want {
			if !codes[i][j].Equal(&want[j]) {
				log.Fatal("pipelined codeword differs")
			}
		}
	}
	fmt.Printf("encoder: %d codewords batch-generated, identical to sequential encoding\n", len(codes))
}
