// Quickstart: define a function as an arithmetic circuit, prove one
// execution, verify the proof, and reject a tampered one.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"batchzk"
)

func main() {
	// The function to prove: y = (x + w)·w − 3, with a public input x and
	// a secret input w. The verifier learns y but nothing about w.
	b := batchzk.NewCircuitBuilder()
	x := b.PublicInput()
	w := b.SecretInput()
	sum := b.Add(x, w)
	prod := b.Mul(sum, w)
	y := b.Sub(prod, b.Const(batchzk.NewElement(3)))
	b.Output(y)
	circuit, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	params, err := batchzk.Setup(circuit)
	if err != nil {
		log.Fatal(err)
	}

	// Prove y = (4 + 6)·6 − 3 = 57 without revealing w = 6.
	public := []batchzk.Element{batchzk.NewElement(4)}
	secret := []batchzk.Element{batchzk.NewElement(6)}
	proof, err := batchzk.Prove(circuit, params, public, secret)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proved: y = %s (secret w stays hidden)\n", proof.Outputs[0].String())

	if err := batchzk.Verify(circuit, params, public, proof); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: the proof is valid")

	// A tampered claim must fail.
	proof.Outputs[0] = batchzk.NewElement(58)
	if err := batchzk.Verify(circuit, params, public, proof); err != nil {
		fmt.Println("tampered proof rejected:", err)
	} else {
		log.Fatal("tampered proof was accepted!")
	}
}
