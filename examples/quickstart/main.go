// Quickstart: define a function as an arithmetic circuit, prove one
// execution, verify the proof, and reject a tampered one.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"os"

	"batchzk"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	// The function to prove: y = (x + w)·w − 3, with a public input x and
	// a secret input w. The verifier learns y but nothing about w.
	b := batchzk.NewCircuitBuilder()
	x := b.PublicInput()
	wire := b.SecretInput()
	sum := b.Add(x, wire)
	prod := b.Mul(sum, wire)
	y := b.Sub(prod, b.Const(batchzk.NewElement(3)))
	b.Output(y)
	circuit, err := b.Build()
	if err != nil {
		return err
	}

	params, err := batchzk.Setup(circuit)
	if err != nil {
		return err
	}

	// Prove y = (4 + 6)·6 − 3 = 57 without revealing w = 6.
	public := []batchzk.Element{batchzk.NewElement(4)}
	secret := []batchzk.Element{batchzk.NewElement(6)}
	proof, err := batchzk.Prove(circuit, params, public, secret)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "proved: y = %s (secret w stays hidden)\n", proof.Outputs[0].String())

	if err := batchzk.Verify(circuit, params, public, proof); err != nil {
		return err
	}
	fmt.Fprintln(w, "verified: the proof is valid")

	// A tampered claim must fail.
	proof.Outputs[0] = batchzk.NewElement(58)
	if err := batchzk.Verify(circuit, params, public, proof); err != nil {
		fmt.Fprintln(w, "tampered proof rejected:", err)
	} else {
		return fmt.Errorf("tampered proof was accepted")
	}
	return nil
}
