package main

import (
	"bytes"
	"strings"
	"testing"
)

// The quickstart must prove, verify, and reject the tampered proof.
func TestQuickstart(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"proved: y = 57",
		"verified: the proof is valid",
		"tampered proof rejected",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}
