// zkbridge: batch proof generation for a stream of cross-chain
// transactions — the throughput-driven deployment the paper motivates
// ("zkBridge service providers charge a handling fee for each transaction.
// Thus, generating more proofs for transactions per unit time brings more
// income", §2.1).
//
// Each "transaction" proves knowledge of a preimage-style relation over
// the transfer amount: the prover knows a secret blinding factor k such
// that commitment = amount·k + k² (a toy payment relation — the point is
// the streaming batch pipeline, not the relation). Proof jobs arrive
// continuously; the pipelined batch prover keeps a bounded number in
// flight and emits proofs in order.
//
//	go run ./examples/zkbridge
package main

import (
	"fmt"
	"log"
	"time"

	"batchzk"
)

const (
	numTransactions = 24
	pipelineDepth   = 6
)

func buildTransferCircuit() (*batchzk.Circuit, error) {
	b := batchzk.NewCircuitBuilder()
	amount := b.PublicInput() // the public transfer amount
	k := b.SecretInput()      // the sender's blinding factor
	// commitment = amount·k + k²
	ak := b.Mul(amount, k)
	k2 := b.Mul(k, k)
	commitment := b.Add(ak, k2)
	b.Output(commitment)
	return b.Build()
}

func main() {
	circuit, err := buildTransferCircuit()
	if err != nil {
		log.Fatal(err)
	}
	params, err := batchzk.Setup(circuit)
	if err != nil {
		log.Fatal(err)
	}
	prover, err := batchzk.NewBatchProver(circuit, params, pipelineDepth)
	if err != nil {
		log.Fatal(err)
	}

	// Transactions arrive as a stream; proofs flow out in order while new
	// transactions keep entering the pipeline (the paper's full-workload
	// state).
	jobs := make(chan batchzk.Job)
	results := prover.Run(jobs)

	amounts := make([][]batchzk.Element, numTransactions)
	go func() {
		defer close(jobs)
		for i := 0; i < numTransactions; i++ {
			amounts[i] = batchzk.RandVector(1)
			jobs <- batchzk.Job{ID: i, Public: amounts[i], Secret: batchzk.RandVector(1)}
		}
	}()

	start := time.Now()
	verified := 0
	for r := range results {
		if r.Err != nil {
			log.Fatalf("tx %d: %v", r.ID, r.Err)
		}
		if err := batchzk.Verify(circuit, params, amounts[r.ID], r.Proof); err != nil {
			log.Fatalf("tx %d: %v", r.ID, err)
		}
		verified++
	}
	elapsed := time.Since(start)
	fmt.Printf("zkbridge: proved and verified %d transactions in %v (%.1f proofs/s, %d in flight)\n",
		verified, elapsed.Round(time.Millisecond),
		float64(verified)/elapsed.Seconds(), pipelineDepth)

	// The per-stage busy-time split — the measurement the paper's §4 uses
	// to derive its thread-allocation ratio.
	stats := prover.Stats()
	fmt.Printf("stage shares: ")
	for i, name := range []string{"commit", "gate-sumcheck", "linear-sumcheck", "opening"} {
		fmt.Printf("%s %.0f%%  ", name, stats.StageShare(i)*100)
	}
	fmt.Println()

	// Show what deploying on real accelerator hardware would look like
	// via the calibrated performance model (the paper's Table 7 setting).
	gh200, err := batchzk.Device("GH200")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := batchzk.SimulateSystem(gh200, 1<<20, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modelled on %s at scale 2^20: %.1f proofs/s amortized, %.0f ms latency\n",
		gh200.Name, rep.ThroughputPerMs()*1000, rep.LatencyNs/1e6)
}
