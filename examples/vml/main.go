// vml: the verifiable machine-learning application of the paper's §5 —
// Machine-Learning-as-a-Service where every prediction ships with a
// zero-knowledge proof that it was computed by the committed model.
//
// The demo uses a small CNN so the whole flow (commit → predict → prove →
// verify) runs end to end in seconds; it then reports the modelled
// VGG-16/CIFAR-10 performance of the paper's Table 11.
//
//	go run ./examples/vml
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"batchzk"
)

func main() {
	// --- Service provider side -----------------------------------------
	// Preprocessing (done once): train/load the model, commit to it.
	model := batchzk.TinyCNN(2024)
	service, err := batchzk.NewMLaaSService(model, 3)
	if err != nil {
		log.Fatal(err)
	}
	root := service.ModelRoot()
	fmt.Printf("service: model committed, Merkle root %x…\n", root[:8])

	// --- Customer side ---------------------------------------------------
	client := service.Client()

	// Customers send images; the provider predicts and proves.
	images := []*batchzk.Tensor{
		batchzk.RandImage(1, 8, 8, 101),
		batchzk.RandImage(1, 8, 8, 102),
		batchzk.RandImage(1, 8, 8, 103),
		batchzk.RandImage(1, 8, 8, 104),
	}
	start := time.Now()
	preds, err := service.HandleBatch(images)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	for i, p := range preds {
		if p.Err != nil {
			log.Fatalf("prediction %d: %v", i, p.Err)
		}
		if err := client.VerifyPrediction(images[i], &p); err != nil {
			log.Fatalf("prediction %d failed verification: %v", i, err)
		}
		fmt.Printf("query %d: class %d — proof verified against the committed model\n", i, p.Class)
	}
	fmt.Printf("served %d proven predictions in %v\n", len(preds), elapsed.Round(time.Millisecond))

	// A prediction with a tampered class must be rejected.
	bad := preds[0]
	bad.Class = (bad.Class + 1) % 10
	if err := client.VerifyPrediction(images[0], &bad); err != nil {
		fmt.Println("tampered prediction rejected:", err)
	} else {
		log.Fatal("tampered prediction accepted!")
	}

	// --- Paper-scale deployment (Table 11) -------------------------------
	gh200, err := batchzk.Device("GH200")
	if err != nil {
		log.Fatal(err)
	}
	table, err := batchzk.RunExperiment("table11", gh200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	table.Render(os.Stdout)
}
